"""Real-runtime memoization: cross-restart reuse with payload backing.

Each test builds two independent manager+worker clusters over one memo
directory — the second cluster has empty worker caches, so any hit must
be backed by md5-verified retained payloads.  The chaos cases seed
corrupt or missing payloads and require observable invalidation plus
regeneration: wrong bytes are never served.
"""

import hashlib

import pytest

from repro.core.task import PythonTask, Task
from repro.memo.store import MemoStore

from .conftest import Cluster


def _double(x):
    return x * 2


def run_workflow(cluster):
    """One deterministic command task + one PythonTask; returns
    (command output bytes, python value, hits, invalidations)."""
    m = cluster.manager
    buf = m.declare_buffer(b"memo input\n")
    t = Task("cat in.txt > out.txt && echo extra >> out.txt").set_deterministic()
    t.add_input(buf, "in.txt")
    out = m.declare_temp()
    t.add_output(out, "out.txt")
    pt = PythonTask(_double, 21).set_deterministic()
    m.submit(t)
    m.submit(pt)
    m.run_until_done(timeout=60)
    assert t.result.exit_code == 0
    assert pt.result.exit_code == 0
    data = m.fetch_bytes(out)
    return (
        data,
        pt.output(),
        len(list(m.log.events("memo_hit"))),
        len(list(m.log.events("memo_invalidated"))),
    )


def run_cluster(tmp_path, memo_dir, round_id):
    c = Cluster(tmp_path / f"round-{round_id}", n_workers=1, memo_dir=str(memo_dir))
    try:
        return run_workflow(c)
    finally:
        c.stop()


def test_warm_restart_serves_identical_bytes(tmp_path):
    memo = tmp_path / "memo"
    d1, v1, hits1, _ = run_cluster(tmp_path, memo, 1)
    assert hits1 == 0
    d2, v2, hits2, inval2 = run_cluster(tmp_path, memo, 2)
    assert (d2, v2) == (d1, v1) == (b"memo input\nextra\n", 42)
    assert hits2 == 2  # both tasks served without dispatch
    assert inval2 == 0
    store = MemoStore(memo)
    assert sum(e.hits for e in store.entries()) == 2


def test_corrupt_payload_invalidated_and_regenerated(tmp_path):
    memo = tmp_path / "memo"
    d1, v1, _, _ = run_cluster(tmp_path, memo, 1)
    # tamper with every retained payload; the recorded md5s no longer
    # match, so nothing in the store is sound for a fresh cluster
    store = MemoStore(memo)
    names = {o.cache_name for e in store.entries() for o in e.outputs}
    assert names
    for name in names:
        assert store.has_payload(name)
        with open(store.payload_path(name), "r+b") as f:
            f.write(b"GARBAGE")
    d2, v2, hits2, inval2 = run_cluster(tmp_path, memo, 2)
    assert (d2, v2) == (d1, v1)  # regenerated, never served corrupt
    assert hits2 == 0
    assert inval2 == 2
    # regeneration re-records and re-harvests: a third cluster hits
    d3, v3, hits3, inval3 = run_cluster(tmp_path, memo, 3)
    assert (d3, v3) == (d1, v1)
    assert hits3 == 2 and inval3 == 0


def test_missing_payload_invalidated_and_regenerated(tmp_path):
    memo = tmp_path / "memo"
    d1, v1, _, _ = run_cluster(tmp_path, memo, 1)
    store = MemoStore(memo)
    for e in store.entries():
        for o in e.outputs:
            store.drop_payload(o.cache_name)
    d2, v2, hits2, inval2 = run_cluster(tmp_path, memo, 2)
    assert (d2, v2) == (d1, v1)
    assert hits2 == 0 and inval2 == 2


def test_live_replicas_back_hits_without_payloads(tmp_path):
    # within one cluster the replicas are live, so hits work even if
    # every retained payload is thrown away between submissions
    memo = tmp_path / "memo"
    c = Cluster(tmp_path / "one", n_workers=1, memo_dir=str(memo))
    try:
        m = c.manager
        buf = m.declare_buffer(b"replica backed\n")
        t1 = Task("cat in.txt > out.txt").set_deterministic()
        t1.add_input(buf, "in.txt")
        o1 = m.declare_temp()
        t1.add_output(o1, "out.txt")
        m.submit(t1)
        m.run_until_done(timeout=60)
        m.memo_store.drop_payload(o1.cache_name)
        t2 = Task("cat in.txt > out.txt").set_deterministic()
        t2.add_input(buf, "in.txt")
        o2 = m.declare_temp()
        t2.add_output(o2, "out.txt")
        m.submit(t2)
        m.run_until_done(timeout=60)
        assert len(list(m.log.events("memo_hit"))) == 1
        assert o2.cache_name == o1.cache_name
        assert m.fetch_bytes(o2) == b"replica backed\n"
    finally:
        c.stop()


def test_opt_out_tenant_runs_every_time(tmp_path):
    memo = tmp_path / "memo"
    for round_id in (1, 2):
        c = Cluster(
            tmp_path / f"r{round_id}", n_workers=1,
            memo_dir=str(memo), memo_opt_out=["default"],
        )
        try:
            m = c.manager
            buf = m.declare_buffer(b"opted out\n")
            t = Task("cat in.txt > out.txt").set_deterministic()
            t.add_input(buf, "in.txt")
            out = m.declare_temp()
            t.add_output(out, "out.txt")
            m.submit(t)
            m.run_until_done(timeout=60)
            assert not list(m.log.events("memo_hit"))
            assert not list(m.log.events("memo_miss"))
        finally:
            c.stop()
    assert len(MemoStore(memo)) == 0
