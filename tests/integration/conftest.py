"""Fixtures for end-to-end tests of the real multi-process runtime."""

import multiprocessing as mp
import threading
import time

import pytest

from repro.core.manager import Manager

#: spawn avoids inheriting the manager's threads/locks into workers
_CTX = mp.get_context("spawn")


class EventWaiter:
    """Condition-based waits driven by the manager's transaction log.

    Attached as an :class:`~repro.core.events.EventLog` sink, so every
    emitted event immediately re-checks the waited-on condition — tests
    block on "the log shows X" instead of sleeping and polling.  The
    sink runs inline under the manager's state lock, so it only pings a
    ``threading.Event``; predicates are evaluated on the waiting thread
    with no waiter lock held (they may take the manager lock freely).

    A slow fallback re-check (``RECHECK``) covers conditions that can
    become true without an event — e.g. a heartbeat refreshing
    ``last_seen`` — so waits are event-fast but never event-blind.
    """

    RECHECK = 0.25

    def __init__(self, manager) -> None:
        self.manager = manager
        self._ping = threading.Event()
        manager.log.attach(lambda _event: self._ping.set())

    def wait_for(self, predicate, timeout=30.0, describe="condition"):
        """Block until ``predicate()`` is true; TimeoutError otherwise."""
        deadline = time.time() + timeout
        while True:
            self._ping.clear()
            if predicate():
                return
            remaining = deadline - time.time()
            if remaining <= 0:
                raise TimeoutError(f"timed out waiting for {describe}")
            self._ping.wait(min(remaining, self.RECHECK))

    def wait_event(self, kind, predicate=None, timeout=30.0):
        """Block until the log holds a ``kind`` event (matching, if given)."""

        def seen():
            return any(
                predicate is None or predicate(e)
                for e in self.manager.log.events(kind)
            )

        self.wait_for(seen, timeout=timeout, describe=f"event {kind!r}")

    def wait_task_state(self, task, state, timeout=30.0):
        """Block until a task reaches a state (woken by task events)."""
        self.wait_for(
            lambda: task.state == state,
            timeout=timeout,
            describe=f"task {task.task_id} state {state}",
        )


def _worker_main(
    host, port, workdir, cores, memory, disk, fault_config=None, reconnect=0.0
):
    from repro.worker.worker import Worker

    worker = Worker(
        host, port, workdir, cores=cores, memory=memory, disk=disk,
        task_timeout=120.0, fault_config=fault_config,
        reconnect_window=reconnect,
    )
    worker.run()


class Cluster:
    """A manager plus real worker processes on localhost.

    ``fault_configs`` (chaos runs) maps launch names ("w0", "w1", ...)
    to picklable :class:`repro.faults.real.WorkerFaultConfig` records
    handed to the matching worker process.
    """

    def __init__(
        self, tmp_path, n_workers=2, cores=4, memory=2000, disk=2000,
        fault_configs=None, reconnect=0.0, **mkw,
    ):
        self.manager = Manager(**mkw)
        self.events = EventWaiter(self.manager)
        self.tmp_path = tmp_path
        self.fault_configs = fault_configs or {}
        self.reconnect = reconnect
        self.procs = []
        for i in range(n_workers):
            self.start_worker(f"w{i}", cores=cores, memory=memory, disk=disk)
        self.wait_workers(n_workers)

    def start_worker(self, name, cores=4, memory=2000, disk=2000):
        workdir = str(self.tmp_path / f"worker-{name}")
        # not a daemon: workers must be able to fork library instances
        proc = _CTX.Process(
            target=_worker_main,
            args=(self.manager.host, self.manager.port, workdir, cores, memory, disk,
                  self.fault_configs.get(name), self.reconnect),
        )
        proc.start()
        self.procs.append(proc)
        return proc

    def wait_workers(self, count, timeout=30.0):
        def joined():
            with self.manager._lock:
                return len(self.manager.workers) >= count

        self.events.wait_for(
            joined, timeout=timeout, describe=f"{count} workers joined"
        )

    def stop(self):
        self.manager.close(shutdown_workers=True)
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)


@pytest.fixture()
def cluster(tmp_path):
    c = Cluster(tmp_path, n_workers=2)
    yield c
    c.stop()


@pytest.fixture()
def single_worker_cluster(tmp_path):
    c = Cluster(tmp_path, n_workers=1)
    yield c
    c.stop()
