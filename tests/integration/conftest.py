"""Fixtures for end-to-end tests of the real multi-process runtime."""

import multiprocessing as mp
import time

import pytest

from repro.core.manager import Manager

#: spawn avoids inheriting the manager's threads/locks into workers
_CTX = mp.get_context("spawn")


def _worker_main(host, port, workdir, cores, memory, disk, fault_config=None):
    from repro.worker.worker import Worker

    worker = Worker(
        host, port, workdir, cores=cores, memory=memory, disk=disk,
        task_timeout=120.0, fault_config=fault_config,
    )
    worker.run()


class Cluster:
    """A manager plus real worker processes on localhost.

    ``fault_configs`` (chaos runs) maps launch names ("w0", "w1", ...)
    to picklable :class:`repro.faults.real.WorkerFaultConfig` records
    handed to the matching worker process.
    """

    def __init__(
        self, tmp_path, n_workers=2, cores=4, memory=2000, disk=2000,
        fault_configs=None, **mkw,
    ):
        self.manager = Manager(**mkw)
        self.tmp_path = tmp_path
        self.fault_configs = fault_configs or {}
        self.procs = []
        for i in range(n_workers):
            self.start_worker(f"w{i}", cores=cores, memory=memory, disk=disk)
        self.wait_workers(n_workers)

    def start_worker(self, name, cores=4, memory=2000, disk=2000):
        workdir = str(self.tmp_path / f"worker-{name}")
        # not a daemon: workers must be able to fork library instances
        proc = _CTX.Process(
            target=_worker_main,
            args=(self.manager.host, self.manager.port, workdir, cores, memory, disk,
                  self.fault_configs.get(name)),
        )
        proc.start()
        self.procs.append(proc)
        return proc

    def wait_workers(self, count, timeout=30.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            with self.manager._lock:
                if len(self.manager.workers) >= count:
                    return
            time.sleep(0.05)
        raise TimeoutError(f"only {len(self.manager.workers)} workers joined")

    def stop(self):
        self.manager.close(shutdown_workers=True)
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)


@pytest.fixture()
def cluster(tmp_path):
    c = Cluster(tmp_path, n_workers=2)
    yield c
    c.stop()


@pytest.fixture()
def single_worker_cluster(tmp_path):
    c = Cluster(tmp_path, n_workers=1)
    yield c
    c.stop()
