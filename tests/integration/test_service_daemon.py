"""Daemon lifecycle: ``repro-service run`` → client demos → ``stop``.

Exercises the same flow as the CI service-mode smoke job, entirely
through subprocesses: daemonize the service, attach two tenants via
the client CLI (the second tenant's shared input must be a cache hit),
check ``status``, then ``stop`` and verify a clean exit with the state
file removed.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.service.daemon import STATE_FILE, TXN_LOG


def run_cli(module, *args, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath("src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def wait_state(state_dir, timeout=30):
    deadline = time.time() + timeout
    path = os.path.join(state_dir, STATE_FILE)
    while time.time() < deadline:
        if os.path.exists(path):
            with open(path) as f:
                return json.load(f)
        time.sleep(0.1)
    raise TimeoutError(f"service never wrote {path}")


@pytest.fixture()
def service(tmp_path):
    state_dir = str(tmp_path / "svc")
    proc = run_cli(
        "repro.service.daemon",
        "run",
        "--state-dir", state_dir,
        "--workers", "1",
        "--cores", "2",
        "--detach",
    )
    assert proc.returncode == 0, proc.stderr
    state = wait_state(state_dir)
    yield state_dir, state
    # belt and braces: never leak the daemon past the test
    run_cli("repro.service.daemon", "stop", "--state-dir", state_dir, "--quiet-missing")


def test_daemon_serves_two_tenants_then_stops_clean(service):
    state_dir, state = service
    endpoint = f"{state['host']}:{state['port']}"

    first = run_cli(
        "repro.service.client",
        "--connect", endpoint, "--tenant", "alice",
        "demo", "--tasks", "2",
    )
    assert first.returncode == 0, first.stderr
    report_a = json.loads(first.stdout)
    assert report_a["cache_hit"] is False and report_a["succeeded"] == 2

    second = run_cli(
        "repro.service.client",
        "--connect", endpoint, "--tenant", "bob",
        "demo", "--tasks", "2",
    )
    assert second.returncode == 0, second.stderr
    report_b = json.loads(second.stdout)
    # same default --content: bob's shared input is already cached
    assert report_b["cache_name"] == report_a["cache_name"]
    assert report_b["cache_hit"] is True and report_b["succeeded"] == 2

    # the reuse landed in the daemon's transaction log
    with open(os.path.join(state_dir, TXN_LOG)) as f:
        log_text = f.read()
    assert "cache_shared" in log_text

    # the tenant table comes from the periodic metrics dump (1s
    # interval), so poll briefly for both tenants to land in it
    deadline = time.time() + 10
    while True:
        status = run_cli("repro.service.daemon", "status", "--state-dir", state_dir)
        assert status.returncode == 0, status.stderr
        assert "running" in status.stdout
        if "alice" in status.stdout and "bob" in status.stdout:
            break
        assert time.time() < deadline, f"tenant table never filled:\n{status.stdout}"
        time.sleep(0.5)

    stop = run_cli("repro.service.daemon", "stop", "--state-dir", state_dir)
    assert stop.returncode == 0, stop.stderr
    assert not os.path.exists(os.path.join(state_dir, STATE_FILE))

    # stop again: already-gone service is still exit 0 with --quiet-missing
    again = run_cli(
        "repro.service.daemon", "stop", "--state-dir", state_dir, "--quiet-missing"
    )
    assert again.returncode == 0


def test_second_run_refuses_while_daemon_alive(service):
    state_dir, _state = service
    dup = run_cli("repro.service.daemon", "run", "--state-dir", state_dir, "--workers", "0")
    assert dup.returncode == 1
    assert "already running" in dup.stderr


# ----------------------------------------------------------------------
# stale pidfiles: the footprint a kill -9 leaves behind
# ----------------------------------------------------------------------


def _dead_pid():
    """A pid guaranteed dead: a child we already reaped."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def _write_stale_state(state_dir):
    os.makedirs(state_dir, exist_ok=True)
    state = {
        "pid": _dead_pid(),
        "host": "127.0.0.1",
        "port": 59999,
        "project": "repro",
        "started": time.time() - 60,
    }
    with open(os.path.join(state_dir, STATE_FILE), "w") as f:
        json.dump(state, f)
    return state


def test_status_reports_stale_pidfile_and_exits_nonzero(tmp_path):
    state_dir = str(tmp_path / "svc")
    state = _write_stale_state(state_dir)
    status = run_cli("repro.service.daemon", "status", "--state-dir", state_dir)
    assert status.returncode != 0
    assert "dead (stale pidfile)" in status.stdout
    assert str(state["pid"]) in status.stdout


def test_stop_cleans_stale_pidfile_and_exits_nonzero(tmp_path):
    state_dir = str(tmp_path / "svc")
    _write_stale_state(state_dir)
    stop = run_cli("repro.service.daemon", "stop", "--state-dir", state_dir)
    # nonzero: there was nothing to stop — the last life crashed
    assert stop.returncode != 0
    assert "stale pidfile" in stop.stdout
    assert not os.path.exists(os.path.join(state_dir, STATE_FILE))


def test_run_reclaims_stale_state_dir(tmp_path):
    state_dir = str(tmp_path / "svc")
    _write_stale_state(state_dir)
    proc = run_cli(
        "repro.service.daemon",
        "run",
        "--state-dir", state_dir,
        "--workers", "0",
        "--detach",
    )
    try:
        assert proc.returncode == 0, proc.stderr
        assert "reclaiming state dir" in proc.stdout
        state = wait_state(state_dir)
        # a fresh live pid replaced the stale one
        assert state["pid"] != 0 and os.path.exists(f"/proc/{state['pid']}")
        status = run_cli("repro.service.daemon", "status", "--state-dir", state_dir)
        assert status.returncode == 0
        assert "running" in status.stdout
    finally:
        run_cli(
            "repro.service.daemon", "stop", "--state-dir", state_dir, "--quiet-missing"
        )
