"""Worker liveness reaping against a pinned clock — no real waiting.

A stub "worker" registers over a raw protocol connection and then goes
completely silent (no heartbeat thread).  Rather than sleeping past the
timeout, the reaper's clock-dependent halves (:meth:`Manager._find_stale`
and :meth:`Manager._reap_stale`) are driven with explicit ``now``
values, so the whole silent-worker story runs in milliseconds.
"""

import time

from repro.core.manager import Manager
from repro.core.resources import Resources
from repro.protocol.connection import Connection
from repro.protocol.messages import M
from tests.integration.conftest import EventWaiter


def _register_stub(manager, events):
    conn = Connection.connect(manager.host, manager.port)
    conn.send_message(
        {
            "type": M.REGISTER,
            "capacity": Resources(cores=2, memory=500, disk=500).to_dict(),
            "transfer_port": 1,  # never contacted: the stub serves nothing
            "cached": [],
        }
    )
    events.wait_event("worker_join", timeout=10)
    return conn


def test_silent_worker_is_reaped_at_the_timeout_boundary(tmp_path):
    m = Manager(worker_liveness_timeout=60.0)
    events = EventWaiter(m)
    try:
        stub = _register_stub(m, events)
        with m._lock:
            wid = next(iter(m.workers))
            joined_at = m.workers[wid].last_seen
        # just inside the timeout: still considered alive
        assert m._find_stale(joined_at + 59.9) == []
        assert m._reap_stale(joined_at + 59.9) == []
        with m._lock:
            assert wid in m.workers
        # just past it: found, declared dead, connection closed
        assert m._find_stale(joined_at + 60.1) != []
        assert m._reap_stale(joined_at + 60.1) == [wid]
        # the receive path unwinds the closed socket into worker_leave
        events.wait_event("worker_leave", lambda e: e.worker == wid, timeout=10)

        def removed():
            with m._lock:
                return wid not in m.workers

        events.wait_for(removed, timeout=10, describe="reaped worker removal")
        leaves = m.log.events("worker_leave")
        assert [e.worker for e in leaves] == [wid]
        # reaping is idempotent: the handle is gone, nothing left to find
        assert m._find_stale(joined_at + 120.0) == []
        stub.close()
    finally:
        m.close()


def test_traffic_refreshes_liveness(tmp_path):
    m = Manager(worker_liveness_timeout=60.0)
    events = EventWaiter(m)
    try:
        stub = _register_stub(m, events)
        with m._lock:
            wid = next(iter(m.workers))
            handle = m.workers[wid]
        # age the handle past the deadline: it is reapable right now
        handle.last_seen -= 120.0
        aged = handle.last_seen
        assert m._find_stale(time.time()) == [handle]
        # any message — here a bare heartbeat — resets the silence clock;
        # no transaction-log event marks it, so this wait leans on the
        # waiter's fallback re-check rather than an event wakeup
        stub.send_message({"type": M.HEARTBEAT})
        events.wait_for(
            lambda: handle.last_seen > aged, timeout=10,
            describe="heartbeat refreshing last_seen",
        )
        assert m._reap_stale(time.time()) == []  # deadline defused
        with m._lock:
            assert wid in m.workers
        stub.close()
    finally:
        m.close()
