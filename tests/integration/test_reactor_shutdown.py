"""Reactor teardown hygiene: close() under load leaks nothing.

The manager's event loop owns a selector, a wake pipe, the listener,
and one registered socket per worker; per-worker sender threads and
the reaper ride along.  Stopping a manager that still has live worker
connections — with batched notices in flight — must unwind all of it:
no stray threads, no open descriptors, no selector keys.  Descriptor
and thread counts are compared around the whole lifecycle, so a leak
of even one connection's resources fails the test.
"""

import os
import threading
import time

from repro.core.manager import Manager
from repro.core.task import Task
from repro.worker.scripted import ScriptedWorker


def _fd_count():
    return len(os.listdir("/proc/self/fd"))


def _wait_threads_settle(baseline, timeout=10.0):
    """Wait for the thread population to fall back to the baseline."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        extra = set(threading.enumerate()) - baseline
        if not extra:
            return []
        time.sleep(0.05)
    return sorted(t.name for t in set(threading.enumerate()) - baseline)


def test_reactor_shutdown_releases_threads_and_fds():
    baseline_threads = set(threading.enumerate())
    baseline_fds = _fd_count()

    m = Manager(worker_liveness_timeout=None)
    workers = [ScriptedWorker(m.host, m.port, batch_delay=0.05) for _ in range(8)]
    deadline = time.time() + 10
    while len(m.workers) < len(workers) and time.time() < deadline:
        time.sleep(0.01)
    assert len(m.workers) == len(workers)

    # keep traffic flowing: completions and batched cache updates are
    # mid-flight when close() lands (0.05s batch windows ensure some
    # notices are still queued worker-side)
    for i in range(40):
        t = Task("noop")
        t.add_output(m.declare_temp(), "out")
        m.submit(t)
    time.sleep(0.05)  # mid-drain, not after it: close under live load

    assert m._reactor_thread.is_alive()
    assert m._sel.get_map()  # live worker registrations

    m.close(shutdown_workers=True)

    # selector fully unregistered and closed
    try:
        live_keys = list(m._sel.get_map() or ())
    except (RuntimeError, KeyError):
        live_keys = []  # closed selectors may refuse get_map entirely
    assert not live_keys
    assert not m._reactor_thread.is_alive()

    for w in workers:
        w.close(timeout=5)
    del m, workers

    leftovers = _wait_threads_settle(baseline_threads)
    assert not leftovers, f"threads leaked past close(): {leftovers}"
    # descriptor population returns to the baseline: listener, wake
    # pipe, selector fd, and one socket per worker are all gone
    deadline = time.time() + 10
    while _fd_count() > baseline_fds and time.time() < deadline:
        time.sleep(0.05)
    assert _fd_count() <= baseline_fds


def test_threaded_mode_shutdown_releases_threads_and_fds():
    """The legacy receive path cleans up the same way (reaper, readers)."""
    baseline_threads = set(threading.enumerate())
    baseline_fds = _fd_count()

    m = Manager(network="threads", worker_liveness_timeout=None)
    workers = [ScriptedWorker(m.host, m.port, batch_delay=0.0) for _ in range(4)]
    deadline = time.time() + 10
    while len(m.workers) < len(workers) and time.time() < deadline:
        time.sleep(0.01)
    m.close(shutdown_workers=True)
    for w in workers:
        w.close(timeout=5)
    del m, workers

    leftovers = _wait_threads_settle(baseline_threads)
    assert not leftovers, f"threads leaked past close(): {leftovers}"
    deadline = time.time() + 10
    while _fd_count() > baseline_fds and time.time() < deadline:
        time.sleep(0.05)
    assert _fd_count() <= baseline_fds
