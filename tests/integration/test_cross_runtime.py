"""Cross-runtime consistency: the same workflow on real vs simulated.

Both runtimes drive identical policy code, so for the same declared
workflow the *data-movement structure* must agree: how many transfers
each kind of source serves, how often the environment is staged, and
what ends up cached where — even though wall-clock and virtual time
differ completely.
"""

import pytest

from repro.core.task import Task, TaskState
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager
from tests.integration.conftest import Cluster

N_TASKS = 8


def _real_run(tmp_path):
    c = Cluster(tmp_path, n_workers=2)
    try:
        m = c.manager
        shared = m.declare_buffer(b"shared-dataset" * 100)
        tasks = []
        for i in range(N_TASKS):
            t = Task(f"cat data > /dev/null && echo {i}")
            t.add_input(shared, "data")
            tasks.append(t)
            m.submit(t)
        m.run_until_done(timeout=120)
        assert all(t.state == TaskState.DONE for t in tasks)
        with m._lock:
            pushes = sum(
                1 for e in m.log.events("transfer_start")
                if e.file == shared.cache_name
            )
            holders = len(m.replicas.locate(shared.cache_name))
            by_worker = {}
            for t in tasks:
                by_worker[t.worker_id] = by_worker.get(t.worker_id, 0) + 1
        return pushes, holders, by_worker
    finally:
        c.stop()


def _sim_run():
    cluster = SimCluster()
    cluster.add_workers(2, cores=4)
    m = SimManager(cluster)
    shared = m.declare_dataset("shared-dataset", 1400)
    tasks = []
    for i in range(N_TASKS):
        t = Task(f"cat {i}")
        t.add_input(shared, "data")
        tasks.append(t)
        m.submit(t, duration=0.5)
    m.run(finalize=False)
    pushes = sum(
        1 for e in m.log.events("transfer_start")
        if e.file == shared.cache_name
    )
    holders = len(m.replicas.locate(shared.cache_name))
    by_worker = {}
    for t in tasks:
        by_worker[t.worker_id] = by_worker.get(t.worker_id, 0) + 1
    return pushes, holders, by_worker


def test_same_workflow_same_movement_structure(tmp_path):
    real_pushes, real_holders, real_spread = _real_run(tmp_path)
    sim_pushes, sim_holders, sim_spread = _sim_run()
    # the shared input reaches each worker exactly once in both runtimes
    assert real_pushes == sim_pushes == 2
    assert real_holders == sim_holders == 2
    # both runtimes use both workers
    assert len(real_spread) == len(sim_spread) == 2
    assert sum(real_spread.values()) == sum(sim_spread.values()) == N_TASKS
