"""Cross-runtime consistency: the same workflow on real vs simulated.

Both runtimes drive identical policy code, so for the same declared
workflow the *data-movement structure* must agree: how many transfers
each kind of source serves, how often the environment is staged, and
what ends up cached where — even though wall-clock and virtual time
differ completely.
"""


from repro.core.control_plane import source_kind
from repro.core.events import peak_transfer_concurrency
from repro.core.task import Task, TaskState
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager
from tests.integration.conftest import Cluster

N_TASKS = 8
N_PAIRS = 4


def _real_run(tmp_path):
    c = Cluster(tmp_path, n_workers=2)
    try:
        m = c.manager
        shared = m.declare_buffer(b"shared-dataset" * 100)
        tasks = []
        for i in range(N_TASKS):
            t = Task(f"cat data > /dev/null && echo {i}")
            t.add_input(shared, "data")
            tasks.append(t)
            m.submit(t)
        m.run_until_done(timeout=120)
        assert all(t.state == TaskState.DONE for t in tasks)
        with m._lock:
            pushes = sum(
                1 for e in m.log.events("transfer_start")
                if e.file == shared.cache_name
            )
            holders = len(m.replicas.locate(shared.cache_name))
            by_worker = {}
            for t in tasks:
                by_worker[t.worker_id] = by_worker.get(t.worker_id, 0) + 1
        return pushes, holders, by_worker
    finally:
        c.stop()


def _sim_run():
    cluster = SimCluster()
    cluster.add_workers(2, cores=4)
    m = SimManager(cluster)
    shared = m.declare_dataset("shared-dataset", 1400)
    tasks = []
    for i in range(N_TASKS):
        t = Task(f"cat {i}")
        t.add_input(shared, "data")
        tasks.append(t)
        m.submit(t, duration=0.5)
    m.run(finalize=False)
    pushes = sum(
        1 for e in m.log.events("transfer_start")
        if e.file == shared.cache_name
    )
    holders = len(m.replicas.locate(shared.cache_name))
    by_worker = {}
    for t in tasks:
        by_worker[t.worker_id] = by_worker.get(t.worker_id, 0) + 1
    return pushes, holders, by_worker


def test_same_workflow_same_movement_structure(tmp_path):
    real_pushes, real_holders, real_spread = _real_run(tmp_path)
    sim_pushes, sim_holders, sim_spread = _sim_run()
    # the shared input reaches each worker exactly once in both runtimes
    assert real_pushes == sim_pushes == 2
    assert real_holders == sim_holders == 2
    # both runtimes use both workers
    assert len(real_spread) == len(sim_spread) == 2
    assert sum(real_spread.values()) == sum(sim_spread.values()) == N_TASKS


# -- producer/consumer DAG: placement decisions must agree ---------------


def _movement_profile(control):
    """Per-source-kind transfer counts, derived two independent ways.

    ``transfer_counts`` is the control plane's own accounting;
    replaying ``transfer_end`` events from the shared log must give the
    same numbers (``@retrieve`` bring-backs are runtime bookkeeping, not
    scheduled transfers, and are excluded).
    """
    counted = {
        kind: n for kind, n in control.transfer_counts.items()
        if kind != "retrieve" and n
    }
    from_events = {}
    for e in control.log.events("transfer_end"):
        if e.category is None or e.category == "@retrieve":
            continue
        kind = source_kind(e.category)
        from_events[kind] = from_events.get(kind, 0) + 1
    assert counted == from_events
    return counted


def _check_dag_placement(producers, consumers):
    """The placement structure both runtimes must produce.

    Every consumer reads one temp file that exists only where its
    producer ran, so locality must colocate each pair; and with equal
    empty workers, load-balancing must spread the producers 2/2.
    """
    for producer, consumer in zip(producers, consumers):
        assert consumer.worker_id == producer.worker_id
    spread = {}
    for t in producers:
        spread[t.worker_id] = spread.get(t.worker_id, 0) + 1
    assert sorted(spread.values()) == [2, 2]


def _real_dag_run(tmp_path):
    c = Cluster(tmp_path, n_workers=2)
    try:
        m = c.manager
        shared = m.declare_buffer(b"common-config" * 50)
        producers, consumers = [], []
        for i in range(N_PAIRS):
            mid = m.declare_temp()
            # slow enough that every submission lands before any task
            # finishes, making placement purely load-balanced
            p = Task(f"cat cfg > /dev/null && sleep 0.7 && echo {i} > mid")
            p.add_input(shared, "cfg")
            p.add_output(mid, "mid")
            producers.append(p)
            q = Task("cat mid")
            q.add_input(mid, "mid")
            consumers.append(q)
        for t in producers + consumers:
            m.submit(t)
        m.run_until_done(timeout=120)
        assert all(t.state == TaskState.DONE for t in producers + consumers)
        with m._lock:
            _check_dag_placement(producers, consumers)
            return _movement_profile(m.control)
    finally:
        c.stop()


def _sim_dag_run():
    cluster = SimCluster()
    cluster.add_workers(2, cores=4)
    m = SimManager(cluster)
    shared = m.declare_dataset("common-config", 650)
    producers, consumers = [], []
    for i in range(N_PAIRS):
        mid = m.declare_temp(size=10)
        p = Task(f"produce {i}")
        p.add_input(shared, "cfg")
        p.add_output(mid, "mid")
        producers.append(p)
        q = Task(f"consume {i}")
        q.add_input(mid, "mid")
        consumers.append(q)
    for t in producers:
        m.submit(t, duration=5.0)
    for t in consumers:
        m.submit(t, duration=1.0)
    m.run(finalize=False)
    assert all(t.state == TaskState.DONE for t in producers + consumers)
    _check_dag_placement(producers, consumers)
    return _movement_profile(m.control)


def test_dag_identical_placement_and_transfer_profile(tmp_path):
    """One DAG, two runtimes, the same policy decisions.

    Four producers each write a temp file consumed by one downstream
    task.  Both runtimes must colocate each consumer with its producer,
    split the producers evenly, and move the shared input from the
    manager to each worker exactly once — with no peer or staging
    traffic at all, since every consumer reads locally.
    """
    real_profile = _real_dag_run(tmp_path)
    sim_profile = _sim_dag_run()
    assert real_profile == sim_profile == {"manager": 2}


# -- per-source concurrency: the Current Transfer Table's invariant ------


def test_real_runtime_respects_source_transfer_limit(tmp_path):
    """Replay the real runtime's event log against its transfer limits.

    With the manager capped at 2 concurrent outbound pushes and four
    workers all needing the same input at once, the emitted
    ``transfer_start``/``transfer_end`` stream must never show more
    than 2 simultaneously open manager transfers (and peer sources must
    stay within the per-worker cap).
    """
    c = Cluster(tmp_path, n_workers=4, source_transfer_limit=2)
    try:
        m = c.manager
        shared = m.declare_buffer(b"popular" * 4000)
        tasks = []
        for i in range(8):
            t = Task("cat data > /dev/null && sleep 0.3")
            t.add_input(shared, "data")
            tasks.append(t)
            m.submit(t)
        m.run_until_done(timeout=120)
        assert all(t.state == TaskState.DONE for t in tasks)
        with m._lock:
            peaks = peak_transfer_concurrency(m.log)
            limits = {
                source: m.transfers.limit_for(source)
                for source in peaks
                if source != "@retrieve"
            }
        assert peaks  # the workflow did move data
        for source, peak in peaks.items():
            if source == "@retrieve":
                continue
            limit = limits[source]
            assert limit is None or peak <= limit, (
                f"source {source} peaked at {peak} concurrent transfers "
                f"(limit {limit})"
            )
    finally:
        c.stop()
