"""Chaos soak for the real multi-process runtime.

The same :class:`FaultPlan` machinery as the simulator's, compiled into
per-worker self-sabotage configs: one of three workers kills itself
mid-way through its second task, and every worker serves corrupted
bytes to peers with fixed per-worker coin streams.  The DAG must still
complete, its retrieved outputs must match a fault-free run byte for
byte, and the transaction log must pair each announced fault with the
recovery it forced.
"""

from repro.core.task import Task, TaskState
from repro.faults import FaultPlan, worker_fault_configs
from tests.integration.conftest import Cluster

N_STAGE = 6
#: seed 0 makes the first peer serve by launch-names w1/w2 corrupt at
#: p=0.35 (their first corrupt-coin draws are 0.16 and 0.15), so the
#: corruption path exercises deterministically whenever peers talk
SEED = 0
CORRUPT_P = 0.35


def _run_dag(cluster):
    """Two-stage DAG: producers write temps, consumers join two each."""
    m = cluster.manager
    temps, finals, tasks = [], [], []
    for i in range(N_STAGE):
        temp = m.declare_temp()
        t = Task(f"echo payload-{i} > out").add_output(temp, "out")
        m.submit(t)
        temps.append(temp)
        tasks.append(t)
    for i in range(N_STAGE):
        final = m.declare_temp()
        t = (
            Task("cat a b > out")
            .add_input(temps[i], "a")
            .add_input(temps[(i + 2) % N_STAGE], "b")
            .add_output(final, "out")
        )
        t.max_retries = 5
        m.submit(t)
        finals.append(final)
        tasks.append(t)
    for t in tasks[:N_STAGE]:
        t.max_retries = 5
    m.run_until_done(timeout=120)
    assert all(t.state == TaskState.DONE for t in tasks), [
        (t.command, t.state, t.result and t.result.failure) for t in tasks
    ]
    return [m.fetch_bytes(f) for f in finals]


def test_chaos_soak_completes_with_intact_outputs(tmp_path):
    plan = (
        FaultPlan(seed=SEED)
        .crash("w0", after_tasks=2)
        .corrupt_transfers("peer", CORRUPT_P)
    )
    configs = worker_fault_configs(plan, ["w0", "w1", "w2"])

    (tmp_path / "chaos").mkdir()
    (tmp_path / "clean").mkdir()
    chaos = Cluster(tmp_path / "chaos", n_workers=3, fault_configs=configs, seed=SEED)
    try:
        chaos_outputs = _run_dag(chaos)
        events = chaos.manager.log.events()
        metrics = chaos.manager.metrics
    finally:
        chaos.stop()

    clean = Cluster(tmp_path / "clean", n_workers=3, seed=SEED)
    try:
        clean_outputs = _run_dag(clean)
        assert not clean.manager.log.events("fault_injected")
    finally:
        clean.stop()

    # recovery is invisible in the data: byte-identical outputs
    assert chaos_outputs == clean_outputs
    assert chaos_outputs[0] == b"payload-0\npayload-2\n"

    # the crash fired (1 of 3 workers died) and was recovered
    faults = [e for e in events if e.kind == "fault_injected"]
    crashes = [e for e in faults if e.category == "crash"]
    assert len(crashes) == 1
    dead = crashes[0].worker
    assert any(
        e.kind == "worker_leave" and e.worker == dead and e.time >= crashes[0].time
        for e in events
    ), "crashed worker never declared gone"
    assert any(e.kind == "task_requeued" for e in events), (
        "a mid-task crash must strand at least its running task"
    )

    # every corrupt serve the workers announced was caught by checksum
    # verification and accounted as a failed transfer of that object
    for e in (f for f in faults if f.category == "serve_corrupt"):
        assert any(
            r.kind == "transfer_failed"
            and r.file == e.file
            and r.time >= e.time
            for r in events
        ), f"no failure accounting for {e}"
    served_corrupt = [e for e in faults if e.category == "serve_corrupt"]
    assert metrics.counter("transfers.corrupt").value >= len(served_corrupt)
    assert metrics.counter("faults.injected").value == len(faults)
