"""End-to-end service mode: concurrent tenants over the client protocol.

One real Manager, real worker subprocesses, and :class:`ServiceClient`
sessions attached over the same reactor socket the workers use.  Pins
the acceptance behaviors: cross-tenant content sharing with zero
re-transfer, clean protocol-level rejects (auth, quota, unknown kind),
detach/reattach with buffered notice replay, and loopback equivalence
with the standalone in-process API.
"""

import os
import signal
import threading
import time

import pytest

from repro.core.task import Task, TaskState
from repro.protocol.connection import Connection
from repro.protocol.messages import M
from repro.service.client import ClientError, ServiceClient

from tests.integration.conftest import Cluster

SHARED = b"shared input content for both tenants\n"


def transfer_count(manager, cache_name):
    return sum(1 for e in manager.log.events("transfer_start") if e.file == cache_name)


@pytest.fixture()
def service_cluster(tmp_path):
    c = Cluster(tmp_path, n_workers=1)
    yield c
    c.stop()


def client_for(cluster, tenant, **kw):
    m = cluster.manager
    return ServiceClient(m.host, m.port, tenant, **kw)


def test_two_tenants_share_content_cache(service_cluster):
    mgr = service_cluster.manager

    with client_for(service_cluster, "alice") as a:
        declared = a.declare_buffer(SHARED)
        assert declared["cache_hit"] is False
        name = declared["cache_name"]
        accepted = a.submit(
            "cat shared.txt > out.txt",
            inputs=[("shared.txt", name)],
            outputs=["out.txt"],
        )
        results = a.run_until_done(timeout=60)
        assert [r["exit_code"] for r in results] == [0]
        a_out = a.fetch(accepted["outputs"]["out.txt"], timeout=60)
        assert a_out == SHARED

    transfers_before = transfer_count(mgr, name)

    with client_for(service_cluster, "bob") as b:
        redeclared = b.declare_buffer(SHARED)
        # content-identical declaration resolves to the same cache name
        # and is a cache hit: no bytes accepted, no transfer scheduled
        assert redeclared["cache_name"] == name
        assert redeclared["cache_hit"] is True
        accepted = b.submit(
            "cat shared.txt > out.txt",
            inputs=[("shared.txt", name)],
            outputs=["out.txt"],
        )
        results = b.run_until_done(timeout=60)
        assert [r["exit_code"] for r in results] == [0]
        b_out = b.fetch(accepted["outputs"]["out.txt"], timeout=60)

    # the reuse is a first-class fact in the txn log...
    shared_events = [e for e in mgr.log.events("cache_shared") if e.file == name]
    assert shared_events and shared_events[0].category == "bob"
    # ...and cost zero additional transfers of the shared input
    assert transfer_count(mgr, name) == transfers_before

    # loopback equivalence: the standalone in-process API yields
    # byte-identical output for the same workflow
    f = mgr.declare_buffer(SHARED)
    t = Task("cat shared.txt > out.txt")
    t.add_input(f, "shared.txt")
    out = mgr.declare_temp()
    t.add_output(out, "out.txt")
    mgr.submit(t)
    done = mgr.run_until_done(timeout=60)
    assert [x.state for x in done] == [TaskState.DONE]
    standalone = mgr.fetch_bytes(out, timeout=60)
    assert standalone == a_out == b_out == SHARED


def test_wrong_password_is_a_clean_reject(tmp_path):
    c = Cluster(tmp_path, n_workers=1, password="s3cret")
    try:
        with pytest.raises(ClientError, match="auth"):
            client_for(c, "mallory", password="wrong")
        with pytest.raises(ClientError, match="auth"):
            client_for(c, "mallory")  # no password at all
        rejected = list(c.manager.log.events("client_rejected"))
        assert len(rejected) == 2
        assert all(e.category == "auth" for e in rejected)
        # the right password still attaches: the reactor survived
        with client_for(c, "alice", password="s3cret") as a:
            assert a.session
    finally:
        c.stop()


def test_over_quota_submit_is_a_clean_reject(service_cluster):
    mgr = service_cluster.manager
    mgr.set_tenant_quota("greedy", task_quota=1)
    with client_for(service_cluster, "greedy") as g:
        g.submit("sleep 5")
        with pytest.raises(ClientError, match="quota"):
            g.submit("true")
    rejected = list(mgr.log.events("client_rejected"))
    assert rejected and rejected[-1].category == "request"


def test_unknown_client_kind_is_a_clean_reject(service_cluster):
    mgr = service_cluster.manager
    conn = Connection.connect(mgr.host, mgr.port, timeout=30)
    conn.settimeout(30)
    try:
        conn.send_message({"type": M.CLIENT_HELLO, "tenant": "probe"})
        assert conn.recv_message()["type"] == M.WELCOME

        conn.send_message({"type": "flarp"})
        reply = conn.recv_message()
        assert reply["type"] == M.CLIENT_REJECT
        assert reply["reason"].startswith("protocol")

        # a worker-only kind from a client session is equally rejected
        conn.send_message({"type": "heartbeat", "worker_id": "w0"})
        reply = conn.recv_message()
        assert reply["type"] == M.CLIENT_REJECT
        assert reply["reason"].startswith("protocol")

        # the session survived both violations: a normal detach works
        conn.send_message({"type": M.DETACH})
        assert conn.recv_message()["type"] == M.DETACHED
    finally:
        conn.close()
    rejected = [e for e in mgr.log.events("client_rejected") if e.category == "protocol"]
    assert len(rejected) == 2


def test_detach_then_reattach_replays_buffered_results(service_cluster):
    mgr = service_cluster.manager
    client = client_for(service_cluster, "roaming")
    accepted = client.submit("echo done > out.txt", outputs=["out.txt"])
    token = client.detach()

    # the workflow finishes while nobody is attached; notices buffer
    service_cluster.events.wait_event(
        "workflow_done", predicate=lambda e: e.category == "roaming", timeout=60
    )

    with client_for(service_cluster, "roaming", session=token) as again:
        assert again.session == token
        results = again.run_until_done(timeout=30)
        assert [r["task_id"] for r in results] == [accepted["task_id"]]
        assert results[0]["exit_code"] == 0

    # a stale/foreign token is refused outright
    with pytest.raises(ClientError, match="session"):
        client_for(service_cluster, "intruder", session="bogus-token")


def test_incremental_submits_do_not_end_the_workflow_early(service_cluster):
    # task 1 finishing between two submits makes the outstanding set
    # momentarily empty and emits a workflow_done notice; the client
    # must not take that for completion of work it submits afterwards
    with client_for(service_cluster, "steady") as c:
        first = c.submit("echo one > out.txt", outputs=["out.txt"])
        c.wait(first["task_id"], timeout=60)
        # drain the stream past the momentary workflow_done notice
        c.fetch(first["outputs"]["out.txt"], timeout=60)
        second = c.submit("echo two > out.txt", outputs=["out.txt"])
        results = c.run_until_done(timeout=60)
        assert {r["task_id"] for r in results} == {second["task_id"]}


def test_reattach_displaces_the_stale_connection(service_cluster):
    mgr = service_cluster.manager
    first = client_for(service_cluster, "roamer")
    second = ServiceClient(mgr.host, mgr.port, "roamer", session=first.session)
    try:
        # the displaced socket dying must not detach the live
        # attachment (regression: its EOF used to null the session's
        # handle and stop the new sender)
        first.close()
        accepted = second.submit("echo alive > out.txt", outputs=["out.txt"])
        assert second.wait(accepted["task_id"], timeout=60)["exit_code"] == 0
    finally:
        second.close()


def test_client_local_declares_are_rejected_without_a_root(service_cluster):
    # remote tenants share one project password: an ungated kind=local
    # declare would read any file on the manager host
    with client_for(service_cluster, "mallory") as m:
        with pytest.raises(ClientError, match="local"):
            m.declare_local("/etc/hostname")
    rejected = list(service_cluster.manager.log.events("client_rejected"))
    assert rejected and rejected[-1].category == "request"


def test_client_local_declares_stay_inside_the_root(tmp_path):
    root = tmp_path / "exports"
    root.mkdir()
    (root / "data.txt").write_text("served\n")
    c = Cluster(tmp_path, n_workers=1, client_local_root=str(root))
    try:
        with client_for(c, "alice") as a:
            declared = a.declare_local("data.txt")
            accepted = a.submit(
                "cat in.txt > out.txt",
                inputs=[("in.txt", declared["cache_name"])],
                outputs=["out.txt"],
            )
            a.run_until_done(timeout=60)
            assert a.fetch(accepted["outputs"]["out.txt"], timeout=60) == b"served\n"
            for escape in ("../outside.txt", "/etc/hostname"):
                with pytest.raises(ClientError):
                    a.declare_local(escape)
    finally:
        c.stop()


def test_fetch_serves_declared_buffers_from_the_manager(service_cluster):
    with client_for(service_cluster, "alice") as a:
        declared = a.declare_buffer(b"round trip")
        assert a.fetch(declared["cache_name"]) == b"round trip"
        # names outside the tenant namespace are refused
        with pytest.raises(ClientError):
            a.fetch("buffer-md5-deadbeef")


# -- the on-demand result fetch plane ---------------------------------


def _proc_for(cluster, worker_id):
    """The OS process behind a registered worker id."""
    workdir = cluster.manager.workers[worker_id].workdir
    name = workdir.rsplit("worker-", 1)[1]
    return cluster.procs[int(name[1:])]  # launch names are w0, w1, ...


def _produce_output(client, payload="payload"):
    """Submit one task producing a worker-held temp output."""
    accepted = client.submit(f"echo {payload} > out.txt", outputs=["out.txt"])
    assert client.wait(accepted["task_id"], timeout=60)["exit_code"] == 0
    return accepted["outputs"]["out.txt"]


def test_concurrent_fetches_of_one_name_share_one_serve(service_cluster):
    mgr = service_cluster.manager
    with client_for(service_cluster, "alice") as a, client_for(
        service_cluster, "alice"
    ) as b:
        name = _produce_output(a)
        # freeze the only holder so both requests park on one waiter
        # list before any payload can come back
        proc = _proc_for(service_cluster, next(iter(mgr.replicas.locate(name))))
        os.kill(proc.pid, signal.SIGSTOP)
        try:
            got = {}
            threads = [
                threading.Thread(
                    target=lambda c=c, k=k: got.__setitem__(
                        k, c.fetch(name, timeout=60)
                    ),
                )
                for k, c in (("one", a), ("two", b))
            ]
            for t in threads:
                t.start()
            time.sleep(1.0)
        finally:
            os.kill(proc.pid, signal.SIGCONT)
        for t in threads:
            t.join(timeout=60)
        assert got == {"one": b"payload\n", "two": b"payload\n"}
    # one SEND_BACK served both waiters: a single fetch transfer moved
    # the bytes through the manager
    fetched = [e for e in mgr.log.events("transfer_end") if e.category == "@fetch"]
    assert [e.file for e in fetched] == [name]


def test_fetch_after_reattach(service_cluster):
    client = client_for(service_cluster, "roaming")
    accepted = client.submit("echo kept > out.txt", outputs=["out.txt"])
    token = client.detach()
    service_cluster.events.wait_event(
        "workflow_done", predicate=lambda e: e.category == "roaming", timeout=60
    )
    # the notice stream is gone, but the result stays fetchable by name
    with client_for(service_cluster, "roaming", session=token) as again:
        assert again.fetch(accepted["outputs"]["out.txt"], timeout=60) == b"kept\n"


def test_fetch_retries_surviving_holder_when_the_asked_worker_dies(tmp_path):
    c = Cluster(tmp_path, n_workers=2, temp_replica_count=2)
    try:
        mgr = c.manager
        with client_for(c, "alice") as a:
            name = _produce_output(a, payload="replicated")
            c.events.wait_for(
                lambda: len(mgr.replicas.locate(name)) == 2,
                timeout=60,
                describe="output replicated to both workers",
            )
            # the fetch deterministically asks the lowest worker id;
            # freeze it so the request is parked there, then kill it
            asked = min(mgr.replicas.locate(name))
            proc = _proc_for(c, asked)
            os.kill(proc.pid, signal.SIGSTOP)
            got = {}
            t = threading.Thread(
                target=lambda: got.__setitem__("data", a.fetch(name, timeout=60))
            )
            t.start()
            time.sleep(1.0)
            os.kill(proc.pid, signal.SIGKILL)
            t.join(timeout=60)
            assert got.get("data") == b"replicated\n"
        retried = [e for e in mgr.log.events("fetch_retried") if e.file == name]
        assert retried and retried[0].worker == asked
        assert retried[0].category == "worker_lost"
    finally:
        c.stop()


def test_fetch_regenerates_results_lost_with_their_worker(tmp_path):
    c = Cluster(tmp_path, n_workers=1)
    try:
        mgr = c.manager
        with client_for(c, "alice") as a:
            name = _produce_output(a, payload="rebuilt")
            # every replica dies with the only worker
            wid = next(iter(mgr.replicas.locate(name)))
            os.kill(_proc_for(c, wid).pid, signal.SIGKILL)
            c.events.wait_event(
                "worker_leave", predicate=lambda e: e.worker == wid, timeout=60
            )
            c.start_worker("w1")
            c.wait_workers(1)
            # lineage still knows the recipe: the fetch reruns the
            # producer on the fresh worker and serves its output
            assert a.fetch(name, timeout=90) == b"rebuilt\n"
        regenerated = [e for e in mgr.log.events("file_regenerated") if e.file == name]
        assert regenerated
    finally:
        c.stop()
