"""Serverless path over the event-driven manager: deploy → invoke → harvest.

The manager's reactor receive path has two special cases the serverless
model leans on: ``install_library``/``invoke`` commands with trailing
bulk payloads on the send side, and ``task_done`` frames announcing a
result payload on the receive side (the reactor must switch its frame
reassembler into bulk mode mid-stream).  These tests drive both with
real worker processes and real forked library instances, including a
resident-instance crash while a call is in flight.
"""

from repro.core.library import FunctionCall
from repro.core.resultref import ResultProxy
from repro.core.task import Task, TaskState

from .conftest import Cluster
from .test_real_runtime import run_all


def test_library_deploy_invoke_harvest(cluster):
    """The full lifecycle: install once, fan out calls, harvest results."""
    m = cluster.manager

    def double(x):
        return [v * 2 for v in x]

    def tag(prefix, n=1):
        return f"{prefix}-{n}"

    m.create_library("mathlib", [double, tag], function_slots=2)
    m.install_library("mathlib")
    calls = [FunctionCall("mathlib", "double", list(range(i + 1))) for i in range(5)]
    calls.append(FunctionCall("mathlib", "tag", "run", n=7))
    for fc in calls:
        m.submit(fc)
    run_all(m)
    assert all(fc.state == TaskState.DONE for fc in calls)
    assert calls[0].output() == [0]
    assert calls[4].output() == [0, 2, 4, 6, 8]
    assert calls[5].output() == "run-7"
    # every call produced a completion event in the transaction log
    assert len(list(m.log.events("task_end"))) >= len(calls)


def test_function_result_larger_than_io_chunk(cluster):
    """A multi-megabyte result rides the bulk path through the reactor.

    The reply's ``task_done`` frame announces ``result_size`` and the
    payload follows as raw bytes spanning several reactor reads — this
    is the mid-stream frame→bulk→frame switch.
    """
    m = cluster.manager

    def blob(n):
        return b"\xab" * n

    m.create_library("bulk", [blob])
    m.install_library("bulk")
    size = 3 * (1 << 20)  # > IO_CHUNK, so reassembly spans reads
    fc = FunctionCall("bulk", "blob", size)
    m.submit(fc)
    run_all(m)
    assert fc.state == TaskState.DONE
    result = fc.output()
    assert len(result) == size and result[:2] == b"\xab\xab"


def test_library_instance_crash_mid_call(cluster):
    """Killing the resident instance mid-call fails fast, not at timeout.

    The invocation fork SIGKILLs its parent — the resident library
    process — then stalls.  The worker's result wait must detect the
    death within about a second, report the call failed, and the rest
    of the runtime must keep working.
    """
    m = cluster.manager

    def suicide():
        import os
        import signal
        import time

        os.kill(os.getppid(), signal.SIGKILL)  # the resident instance
        time.sleep(30)  # never returns a result

    m.create_library("doomed", [suicide])
    m.install_library("doomed")
    fc = FunctionCall("doomed", "suicide")
    m.submit(fc)
    run_all(m, timeout=60.0)
    assert fc.state == TaskState.FAILED
    assert "died before invocation" in (fc.result.output or "")

    # a later call against the dead library fails cleanly too
    fc2 = FunctionCall("doomed", "suicide")
    m.submit(fc2)
    run_all(m, timeout=60.0)
    assert fc2.state == TaskState.FAILED

    # and the workers + reactor are still healthy for ordinary work
    t = Task("echo survived")
    m.submit(t)
    run_all(m, timeout=60.0)
    assert t.state == TaskState.DONE
    assert "survived" in t.result.output


def test_by_reference_chain_keeps_results_at_workers(cluster):
    """A by-reference call chain moves zero result bytes via the manager.

    The first call's quarter-megabyte output stays in the worker cache;
    the second call consumes it through a proxy argument (worker-to-
    worker staging).  Only the final integer crosses the fetch plane,
    when the test dereferences it.
    """
    m = cluster.manager

    def make(n):
        return b"\x07" * n

    def measure(blob, extra=0):
        return len(blob) + extra

    m.create_library("chain", [make, measure], function_slots=2)
    m.install_library("chain")
    first = FunctionCall("chain", "make", 1 << 18).set_by_reference()
    m.submit(first)
    run_all(m)
    assert first.state == TaskState.DONE
    proxy = first.output()
    assert isinstance(proxy, ResultProxy)
    assert proxy.ref.size > 1 << 18  # envelope wraps the payload

    second = FunctionCall("chain", "measure", proxy, extra=1).set_by_reference()
    m.submit(second)
    run_all(m)
    assert second.state == TaskState.DONE
    assert second.output().resolve() == (1 << 18) + 1

    # no result payload ever rode a task reply through the manager
    assert not [e for e in m.log.events() if e.category == "@retrieve"]
    fetched = [e for e in m.log.events("transfer_end") if e.category == "@fetch"]
    assert [e.file for e in fetched] == [second.output().cache_name]


def test_function_call_memo_hit_serves_by_reference(tmp_path):
    """An identical deterministic call is served from memo, not re-run.

    Inline-result calls used to veto memo recording outright; the
    by-reference plane makes the result an ordinary replica-backed
    cache object, so the veto is gone and hits serve.
    """
    c = Cluster(tmp_path, n_workers=1, memo_dir=str(tmp_path / "memo"))
    try:
        m = c.manager

        def triple(n):
            return n * 3

        m.create_library("memolib", [triple])
        m.install_library("memolib")
        first = FunctionCall("memolib", "triple", 14)
        first.set_by_reference().set_deterministic()
        m.submit(first)
        run_all(m)
        assert first.state == TaskState.DONE

        second = FunctionCall("memolib", "triple", 14)
        second.set_by_reference().set_deterministic()
        m.submit(second)
        run_all(m)
        assert second.state == TaskState.DONE
        assert len(list(m.log.events("memo_hit"))) == 1
        assert second.output().cache_name == first.output().cache_name
        assert second.output().resolve() == 42
    finally:
        c.stop()
