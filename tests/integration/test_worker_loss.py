"""Real-runtime fault tolerance: worker processes dying mid-workflow."""

import time

import pytest

from repro.core.task import Task, TaskState
from tests.integration.conftest import Cluster


@pytest.fixture()
def cluster3(tmp_path):
    c = Cluster(tmp_path, n_workers=3)
    yield c
    c.stop()


def _proc_of_worker(cluster, manager, worker_id):
    """Map a manager-side worker id to its OS process via the workdir."""
    with manager._lock:
        workdir = manager.workers[worker_id].workdir
    for i, proc in enumerate(cluster.procs):
        if workdir and workdir.endswith(f"worker-w{i}"):
            return proc
    raise LookupError(f"no process found for {worker_id} ({workdir})")


def test_killed_worker_task_requeued_and_finishes(cluster3):
    m = cluster3.manager
    long_task = Task("sleep 3 && echo survived")
    long_task.max_retries = 2
    m.submit(long_task)
    cluster3.events.wait_task_state(long_task, TaskState.RUNNING, timeout=20)
    victim_wid = long_task.worker_id
    victim_proc = _proc_of_worker(cluster3, m, victim_wid)
    victim_proc.terminate()
    # the manager notices the departure (worker_leave in the log) and
    # requeues onto a survivor
    cluster3.events.wait_event(
        "worker_leave", lambda e: e.worker == victim_wid, timeout=20
    )
    m.run_until_done(timeout=120)
    assert long_task.state == TaskState.DONE
    assert "survived" in long_task.result.output
    assert long_task.worker_id != victim_wid
    assert long_task.retries_used >= 1


def test_replicas_dropped_when_worker_leaves(cluster3):
    m = cluster3.manager
    data = m.declare_buffer(b"spread me" * 100)
    tasks = [
        Task(f"cat d > /dev/null && echo {i}").add_input(data, "d")
        for i in range(6)
    ]
    for t in tasks:
        m.submit(t)
    m.run_until_done(timeout=120)
    with m._lock:
        holders_before = m.replicas.locate(data.cache_name)
    assert holders_before
    cluster3.procs[0].terminate()
    cluster3.events.wait_event("worker_leave", timeout=20)

    def departed():
        with m._lock:
            return len(m.workers) == 2

    cluster3.events.wait_for(departed, timeout=20, describe="worker removal")
    with m._lock:
        holders_after = m.replicas.locate(data.cache_name)
        live = set(m.workers)
    assert holders_after <= live


def test_heartbeats_keep_idle_workers_alive(tmp_path):
    """With a tight liveness timeout, heartbeats are the only traffic
    from an idle worker — it must not be reaped."""
    c = Cluster(tmp_path, n_workers=1, worker_liveness_timeout=12.0)
    try:
        m = c.manager
        # deliberately a bare sleep: the property under test is the
        # absence of a reap during a quiet interval longer than the
        # heartbeat period, so there is no event to wait on — time
        # passing IS the test condition
        time.sleep(8)  # > heartbeat interval, below the timeout
        with m._lock:
            assert len(m.workers) == 1
        t = Task("echo alive")
        m.submit(t)
        m.run_until_done(timeout=60)
        assert t.state == TaskState.DONE
    finally:
        c.stop()
