"""Elastic membership for the real multi-process runtime.

Workers joining mid-run must pick up queued work; a gracefully
draining worker must see its sole-holder cache objects land on
survivors *before* its socket closes — asserted from the transaction
log via the :class:`EventWaiter` fixture machinery, in the order the
drain protocol promises: ``worker_drain``, migration transfers,
``worker_drained``, and only then ``worker_leave``.  The drain is
exercised both manager-initiated (``Manager.drain_worker``) and
worker-announced (a ``draining`` wire message from a fault config's
``drain_at`` timer).
"""

from repro.core.task import Task, TaskState
from repro.faults import FaultPlan, worker_fault_configs
from tests.integration.conftest import Cluster

N_STAGE = 4


def _produce(m, n=N_STAGE):
    """Producers writing distinct temps; each lives on one worker only
    (temp_replica_count=1), so every output starts as a sole holder."""
    temps, tasks = [], []
    for i in range(n):
        temp = m.declare_temp()
        t = Task(f"echo payload-{i} > out").add_output(temp, "out")
        m.submit(t)
        temps.append(temp)
        tasks.append(t)
    m.run_until_done(timeout=120)
    assert all(t.state == TaskState.DONE for t in tasks)
    return temps


def _cached_at(events, stop_index):
    """Per-worker cached sets replayed from the log prefix [0, stop)."""
    held: dict[str, set] = {}
    for e in events[:stop_index]:
        if e.kind == "file_cached":
            held.setdefault(e.worker, set()).add(e.file)
        elif e.kind == "file_deleted":
            held.get(e.worker, set()).discard(e.file)
        elif e.kind == "worker_leave":
            held.pop(e.worker, None)
    return held


def test_worker_joining_mid_run_picks_up_work(tmp_path):
    cluster = Cluster(tmp_path, n_workers=1)
    try:
        m = cluster.manager
        tasks = []
        for i in range(8):
            t = Task("sleep 0.4")
            m.submit(t)
            tasks.append(t)
        # the queue is deeper than one worker drains quickly: reinforce
        cluster.start_worker("late", cores=4)
        cluster.wait_workers(2)
        with m._lock:
            joined = sorted(m.workers)
        m.run_until_done(timeout=120)
        assert all(t.state == TaskState.DONE for t in tasks)
        events = m.log.events()
        late_join = max(
            e.time for e in events if e.kind == "worker_join"
        )
        late_worker = next(
            e.worker for e in events
            if e.kind == "worker_join" and e.time == late_join
        )
        assert late_worker in joined
        assert any(
            e.kind == "task_start" and e.worker == late_worker
            for e in events
        ), "the late worker never received work"
    finally:
        cluster.stop()


def test_manager_drain_migrates_replicas_before_departure(tmp_path):
    cluster = Cluster(tmp_path, n_workers=2)
    try:
        m = cluster.manager
        temps = _produce(m)
        with m._lock:
            holdings = {
                wid: set(m.control.replicas.holdings(wid))
                for wid in m.control.workers
            }
        victim = max(holdings, key=lambda wid: (len(holdings[wid]), wid))
        assert holdings[victim], "the victim must hold cache objects"

        assert m.drain_worker(victim)
        cluster.events.wait_event(
            "worker_drained", lambda e: e.worker == victim, timeout=30
        )
        cluster.events.wait_event(
            "worker_leave", lambda e: e.worker == victim, timeout=30
        )

        events = m.log.events()
        drained = next(
            e for e in events
            if e.kind == "worker_drained" and e.worker == victim
        )
        leave_index = next(
            i for i, e in enumerate(events)
            if e.kind == "worker_leave" and e.worker == victim
        )
        assert drained.category is None, "nothing may be stranded"
        # before the socket closed, every object the victim held was
        # already backed on a survivor
        held = _cached_at(events, leave_index)
        survivors = set().union(
            *(held.get(w, set()) for w in held if w != victim)
        ) if len(held) > 1 else set()
        orphaned = held.get(victim, set()) - survivors
        assert not orphaned, f"sole-holder objects lost to the drain: {orphaned}"
        # and the data plane agrees: every temp is still fetchable
        for i, temp in enumerate(temps):
            assert m.fetch_bytes(temp) == f"payload-{i}\n".encode()
        assert m.metrics.counter("recovery.regenerations").value == 0
        assert m.metrics.counter("elastic.drain_objects_stranded").value == 0
    finally:
        cluster.stop()


def test_worker_announced_drain_completes(tmp_path):
    plan = FaultPlan(seed=0).drain("w0", at=2.0)
    configs = worker_fault_configs(plan, ["w0", "w1"])
    cluster = Cluster(tmp_path, n_workers=2, fault_configs=configs, seed=0)
    try:
        m = cluster.manager
        _produce(m)
        # the worker's own timer announces the departure over the wire;
        # the manager migrates, releases, and the process exits cleanly
        cluster.events.wait_event("worker_drain", timeout=30)
        cluster.events.wait_event("worker_drained", timeout=30)
        cluster.events.wait_event("worker_leave", timeout=30)
        events = m.log.events()
        drained = m.log.events("worker_drained")[0]
        leave = next(e for e in events if e.kind == "worker_leave")
        assert drained.worker == leave.worker
        assert drained.time <= leave.time
        # the survivor still serves the whole workload
        tasks = [Task("echo again > out") for _ in range(2)]
        for t in tasks:
            m.submit(t)
        m.run_until_done(timeout=60)
        assert all(t.state == TaskState.DONE for t in tasks)
    finally:
        cluster.stop()
