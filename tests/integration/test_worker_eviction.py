"""End-to-end tests of worker-side cache-pressure eviction.

The worker enforces an admission bound on its object cache: exceeding
it evicts least-valuable unpinned objects (inputs of in-flight work are
pinned), and every eviction is reported with a ``cache-invalid`` so the
manager's replica table stays truthful.  If an eviction races a
dispatch, the manager requeues the task and replans its transfers.
"""

import multiprocessing as mp

import pytest

from repro.core.manager import Manager
from repro.core.resources import Resources
from repro.core.task import Task, TaskState
from tests.integration.conftest import EventWaiter

_CTX = mp.get_context("spawn")


def _bounded_worker(host, port, workdir, max_cache_bytes):
    from repro.worker.worker import Worker

    Worker(
        host, port, workdir, cores=4, memory=2000, disk=2000,
        task_timeout=120.0, max_cache_bytes=max_cache_bytes,
        eviction_grace=2.0,
    ).run()


@pytest.fixture()
def bounded_cluster(tmp_path):
    m = Manager()
    m.events = EventWaiter(m)
    proc = _CTX.Process(
        target=_bounded_worker,
        args=(m.host, m.port, str(tmp_path / "w"), 600_000),  # 600 KB cache
    )
    proc.start()

    def admitted():
        with m._lock:
            return bool(m.workers)

    m.events.wait_for(admitted, timeout=30, describe="worker admission")
    yield m
    m.close(shutdown_workers=True)
    proc.join(timeout=10)
    if proc.is_alive():
        proc.terminate()


def test_cache_pressure_evicts_and_informs_manager(bounded_cluster):
    m = bounded_cluster
    # three 300 KB inputs, used strictly serially (4-core tasks), so
    # each insertion beyond the second forces an eviction of an earlier,
    # no-longer-pinned input
    blobs = [m.declare_buffer(bytes([65 + i]) * 300_000) for i in range(3)]
    tasks = []
    for i, blob in enumerate(blobs):
        t = Task(f"wc -c < data{i} && sleep 3").set_resources(Resources(cores=4))
        t.max_retries = 3
        t.add_input(blob, f"data{i}")
        tasks.append(t)
        m.submit(t)
    m.run_until_done(timeout=120)
    assert all(t.state == TaskState.DONE for t in tasks)
    assert all("300000" in t.result.output for t in tasks)
    wid = next(iter(m.workers))

    def _held():
        with m._lock:
            return [
                b.cache_name for b in blobs
                if m.replicas.has_replica(b.cache_name, wid)
            ]

    # trailing cache-invalid messages are still in flight when the last
    # task finishes; wait on the replica table reflecting the eviction
    # (woken by the file_deleted events) rather than sleeping
    m.events.wait_for(
        lambda: len(_held()) <= 2, timeout=20, describe="eviction visible"
    )
    assert len(_held()) <= 2  # the bound cannot hold all three


def test_pinning_protects_running_tasks_under_pressure(bounded_cluster):
    m = bounded_cluster
    # a long task holds a+b (500 KB pinned); a third input arriving for
    # the queued task pushes the cache over its 600 KB bound — eviction
    # must victimize something unpinned, and any raced dispatch retries
    a = m.declare_buffer(b"a" * 250_000)
    b = m.declare_buffer(b"b" * 250_000)
    c = m.declare_buffer(b"c" * 250_000)
    holder = Task("cat x y | wc -c && sleep 1").set_resources(Resources(cores=1))
    holder.add_input(a, "x")
    holder.add_input(b, "y")
    follower = Task("wc -c < z").set_resources(Resources(cores=1))
    follower.max_retries = 3
    follower.add_input(c, "z")
    m.submit(holder)
    m.submit(follower)
    m.run_until_done(timeout=120)
    assert holder.state == TaskState.DONE
    assert "500000" in holder.result.output
    assert follower.state == TaskState.DONE
    assert "250000" in follower.result.output
