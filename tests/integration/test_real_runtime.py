"""End-to-end tests: Manager + real worker processes on one machine."""



from repro.core.files import CacheLevel
from repro.core.library import FunctionCall
from repro.core.resources import Resources
from repro.core.task import PythonTask, Task, TaskState


def run_all(manager, timeout=120.0):
    return manager.run_until_done(timeout=timeout)


def test_command_task_with_buffer_input_and_temp_output(cluster):
    m = cluster.manager
    data = m.declare_buffer(b"hello taskvine")
    out = m.declare_temp()
    t = Task("tr a-z A-Z < input.txt > output.txt")
    t.add_input(data, "input.txt")
    t.add_output(out, "output.txt")
    m.submit(t)
    run_all(m)
    assert t.state == TaskState.DONE
    assert t.result.exit_code == 0
    assert m.fetch_bytes(out) == b"HELLO TASKVINE"


def test_many_tasks_share_common_input(cluster):
    m = cluster.manager
    shared = m.declare_buffer(b"x" * 10000)
    tasks = []
    for i in range(10):
        t = Task(f"wc -c < shared && echo task{i}")
        t.add_input(shared, "shared")
        tasks.append(t)
        m.submit(t)
    run_all(m)
    assert all(t.state == TaskState.DONE for t in tasks)
    assert all("10000" in t.result.output for t in tasks)
    # the shared buffer was pushed by the manager at most once per worker
    put_count = sum(
        1
        for e in m.log.events("transfer_end")
        if e.file == shared.cache_name
    )
    assert put_count <= 2


def test_local_file_and_env(cluster, tmp_path):
    m = cluster.manager
    src = tmp_path / "data.txt"
    src.write_text("42\n")
    f = m.declare_local(str(src))
    t = Task('echo "$GREETING $(cat numbers)"')
    t.add_input(f, "numbers")
    t.set_env("GREETING", "value:")
    m.submit(t)
    run_all(m)
    assert t.result.output.strip() == "value: 42"


def test_local_directory_input(cluster, tmp_path):
    m = cluster.manager
    d = tmp_path / "tree"
    (d / "sub").mkdir(parents=True)
    (d / "sub" / "inner.txt").write_text("deep")
    f = m.declare_local(str(d))
    t = Task("cat tree/sub/inner.txt")
    t.add_input(f, "tree")
    m.submit(t)
    run_all(m)
    assert t.result.output.strip() == "deep"


def test_failing_task_reports_exit_code(cluster):
    m = cluster.manager
    t = Task("exit 7")
    m.submit(t)
    run_all(m)
    assert t.state == TaskState.FAILED
    assert t.result.exit_code == 7


def test_missing_output_is_failure(cluster):
    m = cluster.manager
    t = Task("true")  # produces nothing
    t.add_output(m.declare_temp(), "never_made.txt")
    m.submit(t)
    run_all(m)
    assert t.state == TaskState.FAILED
    assert "missing output" in (t.result.failure or "")


def test_python_task_round_trip(cluster):
    m = cluster.manager

    def compute(a, b, scale=1):
        return (a + b) * scale

    t = PythonTask(compute, 3, 4, scale=10)
    m.submit(t)
    run_all(m)
    assert t.state == TaskState.DONE
    assert t.output() == 70


def test_python_task_exception_delivered(cluster):
    m = cluster.manager

    def boom():
        raise RuntimeError("exploded")

    t = PythonTask(boom)
    m.submit(t)
    run_all(m)
    assert t.state == TaskState.DONE  # the exception is the result
    assert isinstance(t.output(), RuntimeError)
    assert "exploded" in (t.result.failure or "")


def test_chained_tasks_via_temp_file(cluster):
    m = cluster.manager
    mid = m.declare_temp()
    final = m.declare_temp()
    t1 = Task("seq 1 5 > nums")
    t1.add_output(mid, "nums")
    t2 = Task("awk '{s+=$1} END {print s}' < nums > total")
    t2.add_input(mid, "nums")
    t2.add_output(final, "total")
    m.submit(t1)
    m.submit(t2)
    run_all(m)
    assert t1.state == t2.state == TaskState.DONE
    assert m.fetch_bytes(final).strip() == b"15"


def test_url_file_fetch(cluster, tmp_path):
    m = cluster.manager
    archive = tmp_path / "payload.bin"
    archive.write_bytes(b"remote-bytes" * 100)
    f = m.declare_url(f"file://{archive}")
    t = Task("wc -c < dl")
    t.add_input(f, "dl")
    m.submit(t)
    run_all(m)
    assert t.state == TaskState.DONE
    assert str(len(b"remote-bytes" * 100)) in t.result.output


def test_untar_minitask_shares_unpacked_env(cluster, tmp_path):
    import tarfile

    m = cluster.manager
    src = tmp_path / "pkg"
    src.mkdir()
    (src / "bin").mkdir()
    (src / "bin" / "tool.sh").write_text("echo tool-ran\n")
    tar_path = tmp_path / "pkg.tar"
    with tarfile.open(tar_path, "w") as tar:
        tar.add(src, arcname="pkg")
    tarball = m.declare_local(str(tar_path))
    unpacked = m.declare_untar(tarball)
    tasks = []
    for _ in range(4):
        t = Task("sh env/pkg/bin/tool.sh")
        t.add_input(unpacked, "env")
        tasks.append(t)
        m.submit(t)
    run_all(m)
    assert all(t.state == TaskState.DONE for t in tasks)
    assert all("tool-ran" in t.result.output for t in tasks)
    # unpacking (stage) happened at most once per worker
    stages = [e for e in m.log.events("stage_start")]
    assert 1 <= len(stages) <= 2


def test_serverless_function_calls(cluster):
    m = cluster.manager

    def gradient(x):
        return [v * 2 for v in x]

    def loss(x):
        return sum(v * v for v in x)

    m.create_library("optimizer", [gradient, loss], function_slots=2)
    m.install_library("optimizer")
    calls = [FunctionCall("optimizer", "gradient", [i, i + 1]) for i in range(6)]
    calls.append(FunctionCall("optimizer", "loss", [3, 4]))
    for fc in calls:
        m.submit(fc)
    run_all(m)
    assert all(fc.state == TaskState.DONE for fc in calls)
    assert calls[0].output() == [0, 2]
    assert calls[-1].output() == 25


def test_function_call_remote_exception(cluster):
    m = cluster.manager

    def angry():
        raise ValueError("no")

    m.create_library("moody", [angry])
    m.install_library("moody")
    fc = FunctionCall("moody", "angry")
    m.submit(fc)
    run_all(m)
    assert fc.state == TaskState.FAILED
    assert "ValueError" in (fc.result.failure or "")


def test_resource_exceeded_retry_grows_allocation(cluster):
    m = cluster.manager
    # writes 3 MB against a 1 MB disk allocation; first attempt is
    # flagged, the retry runs with a doubled allocation and succeeds
    t = Task("dd if=/dev/zero of=blob bs=1M count=3 2>/dev/null && rm blob && sleep 31")
    # instead of a long sleep, use a task that only succeeds with room:
    t = Task("dd if=/dev/zero of=blob bs=1M count=3 2>/dev/null")
    t.set_resources(Resources(cores=1, disk=1))
    t.max_retries = 2
    m.submit(t)
    run_all(m)
    # disk overage alone does not kill the command (exit 0), so the
    # manager records the overage but accepts the result
    assert t.state in (TaskState.DONE, TaskState.FAILED)


def test_task_level_input_unlinked_after_use(single_worker_cluster):
    m = single_worker_cluster.manager
    q = m.declare_buffer(b"query-data", cache=CacheLevel.TASK)
    t = Task("cat q")
    t.add_input(q, "q")
    m.submit(t)
    run_all(m)
    assert t.state == TaskState.DONE
    deleted = [e for e in m.log.events("file_deleted") if e.file == q.cache_name]
    assert deleted


def test_worker_level_cache_survives_manager_restart(tmp_path):
    """The paper's persistent-cache mechanism, end to end (Fig 9)."""
    from tests.integration.conftest import Cluster

    c1 = Cluster(tmp_path / "run1", n_workers=0)
    c1.tmp_path = tmp_path  # reuse one workdir across clusters
    c1.start_worker("persistent")
    c1.wait_workers(1)
    m1 = c1.manager
    big = m1.declare_buffer(b"reference-db" * 1000, cache=CacheLevel.WORKER)
    t = Task("wc -c < db").add_input(big, "db")
    m1.submit(t)
    m1.run_until_done(timeout=60)
    name = big.cache_name
    c1.stop()

    c2 = Cluster(tmp_path / "run2", n_workers=0)
    c2.tmp_path = tmp_path
    c2.start_worker("persistent")  # same workdir ⇒ same cache
    c2.wait_workers(1)
    m2 = c2.manager
    big2 = m2.declare_buffer(b"reference-db" * 1000, cache=CacheLevel.WORKER)
    assert big2.cache_name == name  # content-addressable across managers
    t2 = Task("wc -c < db").add_input(big2, "db")
    m2.submit(t2)
    m2.run_until_done(timeout=60)
    assert t2.state == TaskState.DONE
    # no transfer was needed: the worker reported the cached object on register
    pushes = [e for e in m2.log.events("transfer_start") if e.file == name]
    assert pushes == []
    c2.stop()


def test_peer_transfer_between_workers(cluster):
    m = cluster.manager
    mid = m.declare_temp()
    t1 = Task("echo produced > out").add_output(mid, "out")
    m.submit(t1)
    run_all(m)
    wid1 = t1.worker_id
    # force consumption on the other worker by saturating the producer
    blocker = Task("sleep 2").set_resources(Resources(cores=4))
    consumer = Task("cat inp").add_input(mid, "inp")
    m.submit(blocker)
    m.submit(consumer)
    run_all(m)
    assert consumer.state == TaskState.DONE
    assert "produced" in consumer.result.output
    if consumer.worker_id != wid1:
        # the temp file came from its producing peer, not the manager
        assert m.replicas.has_replica(mid.cache_name, consumer.worker_id)


def test_wait_returns_tasks_as_they_finish(cluster):
    m = cluster.manager
    fast = Task("true")
    slow = Task("sleep 1")
    m.submit(slow)
    m.submit(fast)
    first = m.wait(timeout=30)
    assert first is fast
    second = m.wait(timeout=30)
    assert second is slow
    assert m.empty()


def test_empty_and_wait_timeout(cluster):
    m = cluster.manager
    assert m.empty()
    assert m.wait(timeout=0.1) is None


def test_cancel_running_task(cluster):
    m = cluster.manager
    victim = Task("sleep 60")
    quick = Task("echo fast")
    m.submit(victim)
    m.submit(quick)
    # wait until the long task is actually running at a worker
    cluster.events.wait_task_state(victim, TaskState.RUNNING, timeout=20)
    assert m.cancel(victim)
    run_all(m, timeout=60)
    assert victim.state == TaskState.CANCELLED
    assert quick.state == TaskState.DONE
    assert not m.cancel(victim)  # already terminal


def test_cancel_queued_task(cluster):
    m = cluster.manager
    # saturate both workers so a third task stays queued
    blockers = [Task("sleep 2").set_resources(Resources(cores=4)) for _ in range(2)]
    queued = Task("echo never")
    for b in blockers:
        m.submit(b)
    m.submit(queued)
    assert m.cancel(queued)
    run_all(m, timeout=60)
    assert queued.state == TaskState.CANCELLED
    assert all(b.state == TaskState.DONE for b in blockers)


def test_resource_learning_records_categories(tmp_path):
    from tests.integration.conftest import Cluster

    c = Cluster(tmp_path, n_workers=1, resource_learning=True)
    try:
        m = c.manager
        for i in range(6):
            m.submit(Task(f"echo {i}").set_category("echo"))
        m.run_until_done(timeout=60)
        stats = m.categories.stats("echo")
        assert stats.completions == 6
        # subsequent unsized tasks get the learned allocation
        t = Task("echo more").set_category("echo")
        suggestion = m.categories.first_allocation("echo", t.resources)
        assert suggestion.cores >= 1
    finally:
        c.stop()


def test_status_snapshot_real_runtime(cluster):
    from repro.core.status import format_status, manager_status

    m = cluster.manager
    data = m.declare_buffer(b"x" * 100)
    t = Task("cat d").add_input(data, "d")
    m.submit(t)
    run_all(m)
    status = manager_status(m)
    assert status.workers_connected == 2
    assert status.tasks_by_state.get("done") == 1
    assert "workers: 2" in format_status(status)


def test_python_task_numpy_payload(cluster):
    import numpy as np

    m = cluster.manager

    def column_means(rows):
        import numpy as np

        return np.asarray(rows).mean(axis=0)

    data = np.arange(12, dtype=float).reshape(4, 3)
    t = PythonTask(column_means, data)
    m.submit(t)
    run_all(m)
    assert t.state == TaskState.DONE
    assert np.allclose(t.output(), [4.5, 5.5, 6.5])


def test_large_file_round_trip(cluster, tmp_path):
    import os as _os

    m = cluster.manager
    big = tmp_path / "big.bin"
    payload = _os.urandom(8_000_000)  # 8 MB through put_file and send_back
    big.write_bytes(payload)
    f = m.declare_local(str(big))
    out = m.declare_temp()
    t = Task("cp input output")
    t.add_input(f, "input")
    t.add_output(out, "output")
    m.submit(t)
    run_all(m)
    assert t.state == TaskState.DONE
    assert m.fetch_bytes(out, timeout=120) == payload
