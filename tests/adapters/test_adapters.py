"""End-to-end tests for the DAG and serverless adapters (paper §6)."""

import pytest

from repro.adapters.dag import GraphError, TaskGraph
from repro.adapters.serverless import ServerlessMap
from tests.integration.conftest import Cluster


@pytest.fixture()
def cluster(tmp_path):
    c = Cluster(tmp_path, n_workers=2)
    yield c
    c.stop()


def _double(x):
    return x * 2


def _add(a, b):
    return a + b


def _fail():
    raise ValueError("deliberate")


# -- TaskGraph ------------------------------------------------------------


def test_dag_linear_chain(cluster):
    g = TaskGraph(cluster.manager)
    a = g.add(_double, 3)
    b = g.add(_double, a)
    c = g.add(_double, b)
    assert c.result() == 24
    assert a.result() == 6


def test_dag_diamond(cluster):
    g = TaskGraph(cluster.manager)
    root = g.add(_double, 5)
    left = g.add(_add, root, 1)
    right = g.add(_add, root, 2)
    top = g.add(_add, left, right)
    assert top.result() == (10 + 1) + (10 + 2)


def test_dag_parallel_branches_independent(cluster):
    g = TaskGraph(cluster.manager)
    futures = [g.add(_double, i) for i in range(6)]
    total = g.add(_add, g.add(_add, futures[0], futures[1]), futures[2])
    results = g.results()
    assert total.result() == 0 + 2 + 4
    assert len(results) == 8


def test_dag_kwarg_dependencies(cluster):
    g = TaskGraph(cluster.manager)
    a = g.add(_double, 4)
    b = g.add(_add, 1, b=a)
    assert b.result() == 9


def test_dag_failure_propagates_downstream_only(cluster):
    g = TaskGraph(cluster.manager)
    bad = g.add(_fail)
    downstream = g.add(_double, bad)
    independent = g.add(_double, 10)
    g.run()
    assert independent.result() == 20
    with pytest.raises(GraphError):
        bad.result()
    with pytest.raises(GraphError, match="upstream"):
        downstream.result()


def test_dag_rejects_cross_graph_futures(cluster):
    g1 = TaskGraph(cluster.manager)
    g2 = TaskGraph(cluster.manager)
    a = g1.add(_double, 1)
    with pytest.raises(GraphError):
        g2.add(_double, a)


# -- ServerlessMap -------------------------------------------------------


def test_serverless_map_promotes_hot_function(cluster):
    ex = ServerlessMap(cluster.manager, threshold=3, slots=2)
    futures = ex.map(_double, range(8))
    assert ex.promoted(_double)
    ex.wait_all(timeout=300)
    assert [f.result() for f in futures] == [i * 2 for i in range(8)]
    # the first (threshold-1) ran as plain PythonTasks, the rest serverless
    from repro.core.library import FunctionCall

    kinds = [isinstance(f.task, FunctionCall) for f in futures]
    assert kinds[:2] == [False, False]
    assert all(kinds[2:])


def test_serverless_map_cold_function_stays_plain(cluster):
    ex = ServerlessMap(cluster.manager, threshold=10)
    futures = ex.map(_double, range(3))
    assert not ex.promoted(_double)
    ex.wait_all(timeout=300)
    assert [f.result() for f in futures] == [0, 2, 4]


def test_serverless_map_remote_exception(cluster):
    ex = ServerlessMap(cluster.manager, threshold=1)
    future = ex.submit(_fail)
    ex.wait_all(timeout=300)
    with pytest.raises((ValueError, RuntimeError)):
        future.result()


def test_future_result_before_completion_raises(cluster):
    ex = ServerlessMap(cluster.manager, threshold=99)
    future = ex.submit(_double, 2)
    if not future.done:
        with pytest.raises(RuntimeError, match="not complete"):
            future.result()
    ex.wait_all(timeout=300)
    assert future.result() == 4
