"""End-to-end tests for the Coffea-style histogram executor."""

import numpy as np
import pytest

from repro.adapters.histflow import HistogramExecutor
from repro.apps.minihist import generate_batch, process
from tests.integration.conftest import Cluster


@pytest.fixture()
def cluster(tmp_path):
    c = Cluster(tmp_path, n_workers=2)
    yield c
    c.stop()


def test_executor_matches_local_computation(cluster):
    batches = [
        generate_batch(ds, 5000, seed=i)
        for i, ds in enumerate(["data", "ttbar", "wjets", "data", "ttbar", "wjets"])
    ]
    executor = HistogramExecutor(cluster.manager, fan_in=3)
    report = executor.run(batches)
    assert report.failed_chunks == []
    assert report.n_process_tasks == 6
    assert report.tree_depth >= 1

    # ground truth computed locally
    local = None
    for batch in batches:
        part = process(batch, selection_pt=25.0)
        local = part if local is None else local + part
    assert report.result.n_events == local.n_events
    assert set(report.result.hists) == set(local.hists)
    for key in local.hists:
        assert np.allclose(
            report.result.hists[key].counts, local.hists[key].counts
        )


def test_executor_tree_structure(cluster):
    batches = [generate_batch("data", 500, seed=i) for i in range(9)]
    executor = HistogramExecutor(cluster.manager, fan_in=3)
    report = executor.run(batches)
    # 9 -> 3 -> 1: two levels, 3 + 1 accumulators
    assert report.tree_depth == 2
    assert report.n_accumulate_tasks == 4
    assert report.result.n_events > 0


def test_executor_intermediate_results_stay_in_cluster(cluster):
    m = cluster.manager
    batches = [generate_batch("data", 1000, seed=i) for i in range(4)]
    HistogramExecutor(m, fan_in=2).run(batches)
    # the only FILE_DATA retrieval besides python-result plumbing is the
    # final merged histogram fetch: check no accumulate-input file was
    # ever pushed back through the manager's event log as a retrieval
    # (temp partials move worker-to-worker or stay put)
    temp_moves = [
        e for e in m.log.events("transfer_start")
        if e.file and e.file.startswith("temp-")
    ]
    # peer transfers of temps are fine; none may be a manager retrieval
    assert all(e.category != "@retrieve" for e in temp_moves)
    assert m.empty()


def test_executor_empty_input(cluster):
    report = HistogramExecutor(cluster.manager).run([])
    assert report.n_process_tasks == 0
    assert report.result.n_events == 0


def test_executor_validates_fan_in(cluster):
    with pytest.raises(ValueError):
        HistogramExecutor(cluster.manager, fan_in=1)
