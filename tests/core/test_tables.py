"""Tests for the File Replica Table and Current Transfer Table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.replica_table import ReplicaTable
from repro.core.transfer_table import MANAGER_SOURCE, TransferTable


# -- replica table ---------------------------------------------------------


def test_add_locate_remove():
    rt = ReplicaTable()
    rt.add_replica("f1", "w1", size=100)
    rt.add_replica("f1", "w2")
    assert rt.locate("f1") == {"w1", "w2"}
    assert rt.replica_count("f1") == 2
    assert rt.size_of("f1") == 100
    rt.remove_replica("f1", "w1")
    assert rt.locate("f1") == {"w2"}
    rt.remove_replica("f1", "w2")
    assert rt.locate("f1") == set()
    assert rt.total_names() == 0


def test_add_idempotent():
    rt = ReplicaTable()
    rt.add_replica("f1", "w1", size=10)
    rt.add_replica("f1", "w1", size=10)
    assert rt.replica_count("f1") == 1
    assert rt.total_replicas() == 1


def test_size_mismatch_rejected():
    rt = ReplicaTable()
    rt.add_replica("f1", "w1", size=10)
    with pytest.raises(ValueError):
        rt.add_replica("f1", "w2", size=20)


def test_remove_worker_drops_all_replicas():
    rt = ReplicaTable()
    rt.add_replica("f1", "w1")
    rt.add_replica("f2", "w1")
    rt.add_replica("f2", "w2")
    dropped = rt.remove_worker("w1")
    assert dropped == {"f1", "f2"}
    assert rt.locate("f1") == set()
    assert rt.locate("f2") == {"w2"}
    assert rt.holdings("w1") == set()


def test_forget_name():
    rt = ReplicaTable()
    rt.add_replica("f1", "w1", size=5)
    rt.add_replica("f1", "w2")
    assert rt.forget_name("f1") == {"w1", "w2"}
    assert rt.size_of("f1") == 0
    assert rt.holdings("w1") == set()


def test_locality_scores():
    rt = ReplicaTable()
    rt.add_replica("big", "w1", size=1000)
    rt.add_replica("small", "w1", size=10)
    rt.add_replica("small", "w2", size=10)
    names = ["big", "small", "absent"]
    assert rt.cached_bytes_at("w1", names) == 1010
    assert rt.cached_bytes_at("w2", names) == 10
    assert rt.cached_count_at("w1", names) == 2
    assert rt.cached_count_at("w3", names) == 0


def test_locate_returns_copy():
    rt = ReplicaTable()
    rt.add_replica("f1", "w1")
    rt.locate("f1").add("w9")
    assert rt.locate("f1") == {"w1"}


@given(
    st.lists(
        st.tuples(st.sampled_from("abcde"), st.sampled_from("xyz")),
        max_size=30,
    )
)
def test_property_replica_bidirectional_consistency(pairs):
    rt = ReplicaTable()
    for name, worker in pairs:
        rt.add_replica(name, worker)
    # every forward edge has its reverse edge
    for name, worker in pairs:
        assert worker in rt.locate(name)
        assert name in rt.holdings(worker)
    assert rt.total_replicas() == sum(len(rt.locate(n)) for n in rt.names())


# -- transfer table --------------------------------------------------------


def test_transfer_lifecycle():
    tt = TransferTable(worker_limit=2)
    t = tt.begin("f1", "w1", "w2", size=100, now=5.0)
    assert tt.source_load("w1") == 1
    assert tt.in_flight("f1", "w2")
    assert tt.get(t.transfer_id).size == 100
    done = tt.complete(t.transfer_id)
    assert done.cache_name == "f1"
    assert tt.source_load("w1") == 0
    assert not tt.in_flight("f1", "w2")
    assert len(tt) == 0


def test_duplicate_inbound_rejected():
    tt = TransferTable()
    tt.begin("f1", "w1", "w2", size=1)
    with pytest.raises(RuntimeError):
        tt.begin("f1", "w3", "w2", size=1)


def test_worker_limit_enforced_via_availability():
    tt = TransferTable(worker_limit=2, source_limit=1)
    tt.begin("f1", "w1", "w2", size=1)
    assert tt.source_available("w1")
    tt.begin("f2", "w1", "w3", size=1)
    assert not tt.source_available("w1")
    # manager/url sources use source_limit
    tt.begin("f3", MANAGER_SOURCE, "w4", size=1)
    assert not tt.source_available(MANAGER_SOURCE)
    assert tt.limit_for("url:host") == 1


def test_none_limit_means_unlimited():
    tt = TransferTable(worker_limit=None)
    for i in range(50):
        tt.begin(f"f{i}", "w1", f"d{i}", size=1)
    assert tt.source_available("w1")


def test_cancel_for_worker():
    tt = TransferTable()
    tt.begin("f1", "w1", "w2", size=1)
    tt.begin("f2", "w2", "w3", size=1)
    tt.begin("f3", "w4", "w5", size=1)
    dropped = tt.cancel_for_worker("w2")
    assert {t.cache_name for t in dropped} == {"f1", "f2"}
    assert len(tt) == 1
    assert tt.source_load("w1") == 0


def test_complete_unknown_raises():
    tt = TransferTable()
    with pytest.raises(KeyError):
        tt.complete("nope")


@given(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=40))
def test_property_source_load_matches_active(transfer_sources):
    tt = TransferTable(worker_limit=None)
    ids = []
    for i, src in enumerate(transfer_sources):
        ids.append(tt.begin(f"f{i}", f"w{src}", f"dest{i}", size=1).transfer_id)
    # complete every other transfer
    for tid in ids[::2]:
        tt.complete(tid)
    active = tt.active()
    for src in set(f"w{s}" for s in transfer_sources):
        assert tt.source_load(src) == sum(1 for t in active if t.source == src)
