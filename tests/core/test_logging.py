"""Tests for the logging configuration utility."""

import logging

from repro.util.logging import configure, get_logger


def test_get_logger_namespaced():
    log = get_logger("core.manager")
    assert log.name == "repro.core.manager"
    already = get_logger("repro.worker.worker")
    assert already.name == "repro.worker.worker"


def test_configure_level_override():
    configure(level="debug")
    assert logging.getLogger("repro").level == logging.DEBUG
    configure(level=logging.ERROR)
    assert logging.getLogger("repro").level == logging.ERROR
    configure(level="warning")


def test_configure_idempotent_single_handler():
    configure()
    configure()
    handlers = logging.getLogger("repro").handlers
    assert len(handlers) == 1


def test_unknown_level_falls_back_to_warning():
    configure(level="nonsense")
    assert logging.getLogger("repro").level == logging.WARNING
