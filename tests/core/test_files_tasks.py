"""Tests for file declarations, the registry, and task declarations."""

import pytest

from repro.core.files import (
    BufferFile,
    CacheLevel,
    FileRegistry,
    LocalFile,
    TempFile,
    URLFile,
)
from repro.core.library import FunctionCall, Library, LibraryTask
from repro.core.resources import Resources
from repro.core.task import MiniTask, PythonTask, Task, TaskState


# -- files --------------------------------------------------------------


def test_cache_level_parse():
    assert CacheLevel.parse("worker") == CacheLevel.WORKER
    assert CacheLevel.parse("TASK") == CacheLevel.TASK
    assert CacheLevel.parse(CacheLevel.WORKFLOW) == CacheLevel.WORKFLOW
    assert CacheLevel.parse(2) == CacheLevel.WORKER
    with pytest.raises(KeyError):
        CacheLevel.parse("forever")


def test_cache_level_ordering():
    assert CacheLevel.TASK < CacheLevel.WORKFLOW < CacheLevel.WORKER


def test_file_ids_unique():
    ids = {BufferFile(b"x").file_id for _ in range(100)}
    assert len(ids) == 100


def test_buffer_accepts_str():
    f = BufferFile("text")
    assert f.data == b"text"
    assert f.size == 4


def test_source_descriptions():
    assert "local:" in LocalFile("/tmp/x").source_description()
    assert "url:" in URLFile("http://x/y").source_description()
    assert "buffer[3B]" in BufferFile(b"abc").source_description()


def test_registry_requires_name():
    reg = FileRegistry()
    with pytest.raises(ValueError):
        reg.register(BufferFile(b"x"))


def test_registry_dedups_by_cache_name():
    reg = FileRegistry()
    f1, f2 = BufferFile(b"same"), BufferFile(b"same")
    f1.cache_name = f2.cache_name = "buffer-md5-abc"
    canonical = reg.register(f1)
    assert reg.register(f2) is canonical is f1
    assert len(reg) == 1
    assert reg.by_id(f2.file_id) is f2  # ids still resolve individually


def test_registry_collectable_names():
    reg = FileRegistry()
    for i, level in enumerate([CacheLevel.TASK, CacheLevel.WORKFLOW, CacheLevel.WORKER]):
        f = BufferFile(f"{i}".encode(), cache=level)
        f.cache_name = f"n{i}"
        reg.register(f)
    assert reg.collectable_names() == {"n0", "n1"}
    assert reg.names_at_level(CacheLevel.WORKER) == {"n2"}


# -- tasks ---------------------------------------------------------------


def test_task_accumulates_io():
    t = Task("prog in > out")
    a, b = BufferFile(b"1"), TempFile()
    t.add_input(a, "in").add_output(b, "out")
    assert t.input_files() == [a]
    assert t.output_files() == [b]
    assert b.producer_task_id == t.task_id


def test_task_duplicate_sandbox_names_rejected():
    t = Task("x")
    t.add_input(BufferFile(b"1"), "in")
    with pytest.raises(ValueError):
        t.add_input(BufferFile(b"2"), "in")
    t.add_output(TempFile(), "out")
    with pytest.raises(ValueError):
        t.add_output(TempFile(), "out")


def test_task_immutable_after_submission():
    t = Task("x")
    t.state = TaskState.READY
    with pytest.raises(RuntimeError):
        t.add_input(BufferFile(b"1"), "in")
    with pytest.raises(RuntimeError):
        t.set_env("A", "1")
    with pytest.raises(RuntimeError):
        t.set_resources(Resources(cores=2))


def test_task_setters_chain_and_convert():
    t = (
        Task("x")
        .set_env("KEY", 5)
        .set_cores(4)
        .set_category("blast")
        .set_priority(2.5)
    )
    assert t.env == {"KEY": "5"}
    assert t.resources.cores == 4
    assert t.category == "blast"
    assert t.priority == 2.5


def test_set_cores_preserves_other_dimensions():
    t = Task("x").set_resources(Resources(cores=1, memory=512, disk=100, gpus=1))
    t.set_cores(8)
    assert t.resources == Resources(cores=8, memory=512, disk=100, gpus=1)


def test_input_cache_names_requires_naming():
    t = Task("x").add_input(BufferFile(b"1"), "in")
    with pytest.raises(RuntimeError):
        t.input_cache_names()


def test_python_task_command_mentions_runner():
    t = PythonTask(len, [1, 2, 3])
    assert "pytask_runner" in t.command
    assert t.category == "python"
    with pytest.raises(RuntimeError):
        t.output()
    t.set_output_value(3)
    assert t.output() == 3


def test_minitask_output_name():
    mt = MiniTask("untar x").set_output_name("unpacked")
    assert mt.output_name == "unpacked"
    assert mt.category == "mini"


# -- libraries -----------------------------------------------------------


def _f(x):
    return x + 1


def _g(x):
    return x * 2


def test_library_collects_functions():
    lib = Library("mylib", [_f, _g])
    assert lib.function_names() == ["_f", "_g"]


def test_library_rejects_duplicates_and_empty():
    with pytest.raises(ValueError):
        Library("dup", [_f, _f])
    with pytest.raises(ValueError):
        Library("empty", [])


def test_library_task_defaults():
    lt = LibraryTask(Library("mylib", [_f]), function_slots=4)
    assert lt.library_name == "mylib"
    assert lt.function_slots == 4
    assert lt.category == "library"


def test_function_call_output_lifecycle():
    fc = FunctionCall("mylib", "_f", 10)
    assert fc.library_name == "mylib"
    assert fc.function_name == "_f"
    assert fc.args == (10,)
    with pytest.raises(RuntimeError):
        fc.output()
    fc.set_output_value(11)
    assert fc.output() == 11


def test_add_env_alias_matches_paper_listing():
    # paper Fig. 3 uses t.add_env("BLASTDB", "landmark")
    t = Task("blast").add_env("BLASTDB", "landmark")
    assert t.env == {"BLASTDB": "landmark"}
