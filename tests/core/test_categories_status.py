"""Tests for category resource learning and status reporting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.categories import CategoryStats, CategoryTracker
from repro.core.resources import Resources
from repro.core.status import format_status, manager_status
from repro.core.task import Task, TaskState
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager


# -- category stats ---------------------------------------------------------


def test_stats_record_and_overflow_rate():
    s = CategoryStats()
    s.record(Resources(cores=1, memory=100, disk=10))
    s.record(Resources(cores=2, memory=200, disk=20), exceeded=True)
    assert s.completions == 2
    assert s.overflow_rate == 0.5
    assert s.maximum().memory == 200


def test_suggest_covers_percentile_with_headroom():
    s = CategoryStats()
    for mb in range(1, 101):
        s.record(Resources(cores=1, memory=mb, disk=0))
    suggestion = s.suggest(fraction=0.95, headroom=1.1)
    assert 95 <= suggestion.memory <= 110
    assert suggestion.cores >= 1


def test_suggest_respects_floor():
    s = CategoryStats()
    s.record(Resources(cores=1, memory=1, disk=1))
    floor = Resources(cores=4, memory=500, disk=100)
    suggestion = s.suggest(floor=floor)
    assert suggestion.cores == 4
    assert suggestion.memory == 500
    assert suggestion.disk == 100


def test_tracker_uses_declared_until_enough_samples():
    tracker = CategoryTracker(min_samples=3)
    declared = Resources(cores=2, memory=100)
    assert tracker.first_allocation("blast", declared) == declared
    for _ in range(3):
        tracker.record("blast", Resources(cores=1, memory=900, disk=0))
    learned = tracker.first_allocation("blast", declared)
    assert learned.memory >= 900
    assert learned.cores >= declared.cores  # declared acts as a floor


def test_tracker_retry_allocation_uses_peak():
    tracker = CategoryTracker()
    declared = Resources(cores=1, memory=100)
    # no data: fall back to doubling
    assert tracker.retry_allocation("x", declared).memory == 200
    tracker.record("x", Resources(cores=1, memory=5000, disk=0))
    retry = tracker.retry_allocation("x", declared)
    assert retry.memory >= 5000


def test_tracker_validates_fraction():
    with pytest.raises(ValueError):
        CategoryTracker(fraction=0.0)
    with pytest.raises(ValueError):
        CategoryTracker(fraction=1.5)


def test_tracker_summary_and_categories():
    tracker = CategoryTracker()
    tracker.record("a", Resources(cores=1, memory=10, disk=1))
    tracker.record("b", Resources(cores=2, memory=20, disk=2), exceeded=True)
    assert tracker.categories() == ["a", "b"]
    summary = tracker.summary()
    assert summary["b"]["overflow_rate"] == 1.0
    assert summary["a"]["completions"] == 1


@given(st.lists(st.integers(1, 10_000), min_size=1, max_size=200))
def test_property_suggestion_bounded_by_max_with_headroom(memories):
    s = CategoryStats()
    for m in memories:
        s.record(Resources(cores=1, memory=m, disk=0))
    suggestion = s.suggest(fraction=0.95, headroom=1.1)
    assert suggestion.memory <= max(memories) * 1.1 + 1
    assert suggestion.memory >= 0


def test_resources_explicit_flag():
    t = Task("cmd")
    assert not t.resources_explicit
    t.set_cores(2)
    assert t.resources_explicit
    t2 = Task("cmd").set_resources(Resources(cores=1))
    assert t2.resources_explicit


# -- status reporting (against the simulator) -----------------------------


@pytest.fixture()
def sim_pair():
    c = SimCluster()
    c.add_workers(2, cores=4)
    m = SimManager(c)
    return c, m


def test_status_counts_tasks_and_workers(sim_pair):
    c, m = sim_pair
    data = m.declare_dataset("d", 1000)
    tasks = [Task(f"t{i}").add_input(data, "d") for i in range(4)]
    for t in tasks:
        m.submit(t, duration=1.0)
    m.run(finalize=False)
    status = manager_status(m)
    assert status.tasks_by_state == {"done": 4}
    assert status.workers_connected == 2
    assert status.tasks_total == 4
    assert status.files_tracked >= 1
    assert status.replicas_total >= 1


def test_status_formatting(sim_pair):
    c, m = sim_pair
    m.submit(Task("x"), duration=1.0)
    m.run(finalize=False)
    text = format_status(manager_status(m))
    assert "tasks: 1" in text
    assert "workers: 2" in text
    assert "cache" in text


def test_status_reports_libraries(sim_pair):
    c, m = sim_pair
    m.create_library("lib", startup_time=0.5)
    m.install_library("lib")
    m.submit(Task("x"), duration=2.0)
    m.run(finalize=False)
    status = manager_status(m)
    assert status.libraries == {"lib": 2}


# -- sim cancellation ---------------------------------------------------------


def test_sim_cancel_ready_task(sim_pair):
    c, m = sim_pair
    blockers = [
        Task(f"b{i}").set_resources(Resources(cores=4)) for i in range(2)
    ]
    victim = Task("victim")
    for b in blockers:
        m.submit(b, duration=5.0)
    m.submit(victim, duration=5.0)
    assert m.cancel(victim)
    m.run(finalize=False)
    assert victim.state == TaskState.CANCELLED
    assert all(b.state == TaskState.DONE for b in blockers)


def test_sim_cancel_running_task(sim_pair):
    c, m = sim_pair
    long = Task("long")
    short = Task("short")
    m.submit(long, duration=1000.0)
    m.submit(short, duration=1.0)
    m.sim.run(until=1.0)
    assert long.state == TaskState.RUNNING
    assert m.cancel(long)
    stats = m.run(finalize=False)
    assert long.state == TaskState.CANCELLED
    assert short.state == TaskState.DONE
    assert stats.finished < 100  # did not wait for the cancelled task


def test_sim_cancel_terminal_returns_false(sim_pair):
    c, m = sim_pair
    t = Task("x")
    m.submit(t, duration=0.5)
    m.run(finalize=False)
    assert not m.cancel(t)
