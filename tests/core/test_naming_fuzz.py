"""Hypothesis fuzzing of the naming layer (collision and sensitivity)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.files import BufferFile, CacheLevel, TempFile
from repro.core.naming import Namer, task_spec_hash
from repro.util.hashing import hash_bytes


@given(st.lists(st.binary(max_size=64), min_size=1, max_size=30))
def test_buffer_names_collide_iff_content_equal(buffers):
    namer = Namer(seed=0)
    names = {}
    for data in buffers:
        f = BufferFile(data, CacheLevel.WORKER)
        name = namer.assign(f)
        if data in names:
            assert names[data] == name
        else:
            # different content must not alias (md5 collision aside)
            assert name not in set(names.values()) or names.get(data) == name
            names[data] = name


@given(st.integers(0, 2**32), st.integers(1, 50))
def test_random_names_unique_within_run(seed, count):
    namer = Namer(seed=seed)
    names = [namer.assign(TempFile()) for _ in range(count)]
    assert len(set(names)) == count


@given(
    st.text(min_size=1, max_size=60),
    st.lists(
        st.tuples(st.text(min_size=1, max_size=10), st.text(min_size=1, max_size=40)),
        max_size=6,
    ),
    st.dictionaries(st.text(min_size=1, max_size=8), st.text(max_size=8), max_size=4),
)
def test_spec_hash_deterministic_and_env_sensitive(command, inputs, env):
    base = task_spec_hash(command, inputs, {"cores": 1}, env)
    assert task_spec_hash(command, list(reversed(inputs)), {"cores": 1}, env) == base
    assert task_spec_hash(command + "!", inputs, {"cores": 1}, env) != base
    if env:
        changed = dict(env)
        key = next(iter(changed))
        changed[key] = changed[key] + "_x"
        assert task_spec_hash(command, inputs, {"cores": 1}, changed) != base


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=4096))
def test_hashing_matches_reference(data):
    import hashlib

    assert hash_bytes(data) == hashlib.md5(data).hexdigest()
