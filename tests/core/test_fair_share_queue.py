"""Fair-share ReadyQueue: single-tenant equivalence and DRR behavior.

The multi-tenant queue layers deficit-round-robin across tenants on
top of the existing per-tenant ``(-priority, seq)`` heap ordering.
The load-bearing contract is that a single tenant (every pre-service
workflow) sees *exactly* the old global-heap order — pinned here by an
equivalence test against a reference implementation under randomized
push/pop/discard workloads.
"""

import heapq
import random

from repro.core.scheduler import ReadyQueue
from repro.core.task import Task


def make_task(task_id, seq, priority=0.0, tenant="default"):
    t = Task(f"cmd {task_id}")
    t.task_id = task_id
    t.seq = seq
    t.priority = priority
    t.tenant = tenant
    return t


class ReferenceQueue:
    """The pre-fair-share ReadyQueue: one global heap, token-gated."""

    def __init__(self):
        self._heap = []
        self._live = {}
        self._next_token = 1

    def push(self, task):
        token = self._next_token
        self._next_token += 1
        self._live[task.task_id] = (token, task)
        heapq.heappush(self._heap, (-task.priority, task.seq, token, task))

    def discard(self, task):
        self._live.pop(task.task_id, None)

    @property
    def snapshot_token(self):
        return self._next_token

    def pop_entries(self, upto_token):
        deferred = []
        try:
            while self._heap:
                entry = self._heap[0]
                _np, _seq, token, task = entry
                live = self._live.get(task.task_id)
                if live is None or live[0] != token:
                    heapq.heappop(self._heap)
                    continue
                if token >= upto_token:
                    heapq.heappop(self._heap)
                    deferred.append(entry)
                    continue
                heapq.heappop(self._heap)
                self._live.pop(task.task_id, None)
                yield entry
        finally:
            for entry in deferred:
                heapq.heappush(self._heap, entry)

    def restore(self, entry):
        _np, _seq, token, task = entry
        if self._live.get(task.task_id, (None,))[0] == token:
            heapq.heappush(self._heap, entry)


def drain_ids(q, upto_token=None, stash_every=None):
    """Pop everything eligible, optionally restoring every Nth entry."""
    token = q.snapshot_token if upto_token is None else upto_token
    popped, stashed = [], []
    for i, entry in enumerate(q.pop_entries(token)):
        if stash_every and i % stash_every == 0:
            stashed.append(entry)
        else:
            popped.append(entry[3].task_id)
    for entry in stashed:
        q.restore(entry)
    return popped


def test_single_tenant_order_matches_reference_randomized():
    rng = random.Random(20230601)
    for _round in range(30):
        fair = ReadyQueue(fair_share=True)
        ref = ReferenceQueue()
        tasks = {}
        seq = 0
        for step in range(rng.randrange(5, 40)):
            op = rng.random()
            if op < 0.55 or not tasks:
                seq += 1
                t = make_task(f"t{seq}", seq, priority=rng.choice([0.0, 0.0, 1.0, -1.0]))
                tasks[t.task_id] = t
                fair.push(t)
                ref.push(t)
            elif op < 0.7:
                victim = tasks.pop(rng.choice(list(tasks)))
                fair.discard(victim)
                ref.discard(victim)
            else:
                got_fair = drain_ids(fair)
                got_ref = drain_ids(ref)
                assert got_fair == got_ref
                for tid in got_fair:
                    tasks.pop(tid, None)
        assert drain_ids(fair) == drain_ids(ref)


def test_single_tenant_respects_priority_then_seq():
    q = ReadyQueue(fair_share=True)
    a = make_task("a", 1, priority=0.0)
    b = make_task("b", 2, priority=5.0)
    c = make_task("c", 3, priority=0.0)
    for t in (a, b, c):
        q.push(t)
    assert drain_ids(q) == ["b", "a", "c"]


def test_snapshot_token_excludes_later_pushes():
    q = ReadyQueue(fair_share=True)
    q.push(make_task("a", 1))
    token = q.snapshot_token
    q.push(make_task("b", 2))
    assert drain_ids(q, upto_token=token) == ["a"]
    assert "b" in q  # deferred entry restored
    assert drain_ids(q) == ["b"]


def test_fair_share_interleaves_tenants_round_robin():
    q = ReadyQueue(fair_share=True)
    seq = 0
    for i in range(6):
        seq += 1
        q.push(make_task(f"a{i}", seq, tenant="alice"))
    for i in range(3):
        seq += 1
        q.push(make_task(f"b{i}", seq, tenant="bob"))
    order = drain_ids(q)
    # bob's 3 tasks all dispatch within the first 6 pops despite alice
    # having submitted 6 tasks first
    assert all(tid in order[:6] for tid in ("b0", "b1", "b2"))
    # and within each tenant, FIFO order is preserved
    assert [t for t in order if t.startswith("a")] == [f"a{i}" for i in range(6)]
    assert [t for t in order if t.startswith("b")] == [f"b{i}" for i in range(3)]


def test_fair_share_disabled_is_global_fifo():
    q = ReadyQueue(fair_share=False)
    seq = 0
    for i in range(4):
        seq += 1
        q.push(make_task(f"a{i}", seq, tenant="alice"))
    for i in range(2):
        seq += 1
        q.push(make_task(f"b{i}", seq, tenant="bob"))
    assert drain_ids(q) == ["a0", "a1", "a2", "a3", "b0", "b1"]


def test_ring_position_persists_across_pumps():
    q = ReadyQueue(fair_share=True)
    seq = 0
    for i in range(4):
        seq += 1
        q.push(make_task(f"a{i}", seq, tenant="alice"))
        seq += 1
        q.push(make_task(f"b{i}", seq, tenant="bob"))
    first = []
    for entry in q.pop_entries(q.snapshot_token):
        first.append(entry[3].task_id)
        if len(first) == 3:
            break
    second = drain_ids(q)
    combined = first + second
    # across the two pumps each tenant still dispatches alternately
    assert combined.count("a0") == 1
    for i in range(0, 8, 2):
        pair = {combined[i].rstrip("0123456789")[0], combined[i + 1].rstrip("0123456789")[0]}
        assert pair == {"a", "b"}


def test_restore_returns_entry_to_its_tenant_heap():
    q = ReadyQueue(fair_share=True)
    a = make_task("a0", 1, tenant="alice")
    b = make_task("b0", 2, tenant="bob")
    q.push(a)
    q.push(b)
    entries = list(q.pop_entries(q.snapshot_token))
    assert len(entries) == 2
    for entry in entries:
        q.restore(entry)
    assert sorted(drain_ids(q)) == ["a0", "b0"]


def test_queued_by_tenant_counts_live_entries():
    q = ReadyQueue(fair_share=True)
    q.push(make_task("a0", 1, tenant="alice"))
    q.push(make_task("a1", 2, tenant="alice"))
    b = make_task("b0", 3, tenant="bob")
    q.push(b)
    q.discard(b)
    assert q.queued_by_tenant() == {"alice": 2}
