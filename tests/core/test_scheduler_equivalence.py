"""Equivalence suite: index-backed scheduling == the reference scan.

The incremental hot path (``choose_worker_indexed`` over a
:class:`PlacementIndex`, ``plan_transfers`` over the transfer table's
saturation set, :class:`ReadyQueue` instead of a per-pump sort) must
produce *byte-identical* decisions to the brute-force code it replaced.
Three layers of evidence:

1. hypothesis properties comparing both placement paths on random
   cluster states (including draining workers and failure scores);
2. a shadow scheduler wired into real ``SimManager`` workloads that
   cross-checks every live placement decision against the oracle;
3. ``ReadyQueue`` iteration order vs. ``Scheduler.order_ready``, plus
   the saturation fast path vs. pure limit arithmetic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.files import BufferFile
from repro.core.replica_table import ReplicaTable
from repro.core.resources import Resources
from repro.core.scheduler import (
    PlacementIndex,
    ReadyQueue,
    Scheduler,
    WorkerView,
)
from repro.core.task import Task
from repro.core.transfer_table import MANAGER_SOURCE, TransferTable
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

MB = 1_000_000
worker_ids = [f"w{i}" for i in range(6)]
file_names = [f"file-{i}" for i in range(8)]


@st.composite
def cluster_state(draw):
    """Random replica layout, transfer load, task, and worker views."""
    replicas = ReplicaTable()
    for name in file_names:
        holders = draw(st.sets(st.sampled_from(worker_ids), max_size=4))
        size = draw(st.integers(0, 10**6))
        for w in holders:
            replicas.add_replica(name, w, size=size)
    worker_limit = draw(st.one_of(st.none(), st.integers(0, 4)))
    source_limit = draw(st.one_of(st.none(), st.integers(0, 4)))
    transfers = TransferTable(worker_limit=worker_limit, source_limit=source_limit)
    pairs = draw(
        st.sets(
            st.tuples(st.sampled_from(file_names), st.sampled_from(worker_ids)),
            max_size=6,
        )
    )
    for name, dest in pairs:
        source = draw(st.sampled_from(worker_ids + [MANAGER_SOURCE]))
        transfers.begin(name, source, dest, size=1)
    task = Task("cmd")
    for i, name in enumerate(draw(st.lists(st.sampled_from(file_names), max_size=5))):
        f = BufferFile(b"x")
        f.cache_name = name
        task.inputs.append((f"in{i}", f))
    task.resources = Resources(cores=draw(st.integers(1, 8)))
    views = {}
    for wid in worker_ids:
        if draw(st.booleans()):
            continue  # worker absent
        allocated = draw(st.integers(0, 8))
        views[wid] = WorkerView(
            worker_id=wid,
            capacity=Resources(cores=8, memory=1000, disk=1000),
            allocated=Resources(cores=allocated),
            running_tasks=allocated,
            draining=draw(st.booleans()),
        )
    sched = Scheduler(replicas, transfers, locality=draw(st.booleans()))
    if draw(st.booleans()):
        scores = {w: draw(st.integers(0, 3)) for w in worker_ids}
        sched.failure_score = scores.get
    return sched, task, views


@settings(max_examples=300, deadline=None)
@given(cluster_state())
def test_indexed_placement_matches_reference_scan(state):
    sched, task, views = state
    expected = sched.choose_worker(task, views)
    index = PlacementIndex(dict(views), sched.failure_score)
    assert sched.choose_worker_indexed(task, index) == expected


@settings(max_examples=100, deadline=None)
@given(cluster_state(), st.data())
def test_indexed_placement_matches_after_view_updates(state, data):
    """The index stays exact as dispatches mutate worker views."""
    sched, task, views = state
    index = PlacementIndex(dict(views), sched.failure_score)
    for _ in range(data.draw(st.integers(1, 4))):
        wid = data.draw(st.sampled_from(worker_ids))
        if data.draw(st.booleans()):
            views.pop(wid, None)
            index.update(wid, None)
        else:
            allocated = data.draw(st.integers(0, 8))
            v = WorkerView(
                worker_id=wid,
                capacity=Resources(cores=8, memory=1000, disk=1000),
                allocated=Resources(cores=allocated),
                running_tasks=allocated,
            )
            views[wid] = v
            index.update(wid, v)
        assert sched.choose_worker_indexed(task, index) == sched.choose_worker(
            task, views
        )


def test_duplicate_input_names_score_like_reference():
    """A task listing one cache name twice must double-count it on both
    paths (the old scan summed over the raw input list)."""
    replicas = ReplicaTable()
    replicas.add_replica("dup", "w0", size=10)
    replicas.add_replica("solo", "w1", size=15)
    sched = Scheduler(replicas, TransferTable())
    task = Task("cmd")
    for i, name in enumerate(["dup", "dup", "solo"]):
        f = BufferFile(b"x")
        f.cache_name = name
        task.inputs.append((f"in{i}", f))
    views = {
        w: WorkerView(worker_id=w, capacity=Resources(cores=8))
        for w in ("w0", "w1", "w2")
    }
    # w0 scores 20 (10 counted twice) > w1's 15
    assert sched.choose_worker(task, views) == "w0"
    assert sched.choose_worker_indexed(task, PlacementIndex(dict(views))) == "w0"


# -- live shadow check over real workloads -----------------------------


def _shadow(monkeypatch):
    """Cross-check every indexed decision against the oracle, live."""
    calls = []
    orig = Scheduler.choose_worker_indexed

    def checking(self, task, index):
        expected = self.choose_worker(task, dict(index.views))
        got = orig(self, task, index)
        assert got == expected, (
            f"indexed placement diverged for {task.task_id}: "
            f"{got!r} != oracle {expected!r}"
        )
        calls.append(got)
        return got

    monkeypatch.setattr(Scheduler, "choose_worker_indexed", checking)
    return calls


def test_shadow_scheduler_fan_out_workload(monkeypatch):
    calls = _shadow(monkeypatch)
    c = SimCluster()
    c.add_workers(5, cores=4)
    m = SimManager(c)
    data = m.declare_dataset("shared", 100 * MB)
    tasks = [Task("use").add_input(data, "d") for _ in range(40)]
    for t in tasks:
        m.submit(t, duration=1.0)
    stats = m.run()
    assert stats.tasks_done == 40
    assert len(calls) >= 40


def test_shadow_scheduler_lineage_workload(monkeypatch):
    """Chained temps + priorities + a worker mid-run exercise requeues,
    locality and the fallback path under the shadow check."""
    calls = _shadow(monkeypatch)
    c = SimCluster()
    c.add_workers(3, cores=2)
    m = SimManager(c)
    prev = None
    tasks = []
    for i in range(12):
        t = Task(f"stage{i}").set_priority(float(i % 3))
        if prev is not None:
            t.add_input(prev, "in")
        out = m.declare_temp()
        t.add_output(out, "out")
        prev = out
        tasks.append(t)
    for t in tasks:
        m.submit(t, duration=0.5, output_sizes={"out": 5 * MB})
    stats = m.run()
    assert stats.tasks_done == 12
    assert len(calls) >= 12


# -- ReadyQueue vs. the sorted-list ordering ---------------------------


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(-3, 3), st.booleans()), min_size=1, max_size=30
    )
)
def test_ready_queue_pops_in_order_ready_order(specs):
    """Heap iteration == ``order_ready`` over the same live set."""
    q = ReadyQueue()
    tasks = []
    for i, (prio, keep) in enumerate(specs):
        t = Task(f"cmd{i}")
        t.task_id = f"t{i + 1}"
        t.seq = i + 1
        t.priority = float(prio)
        q.push(t)
        tasks.append((t, keep))
    dropped = [t for t, keep in tasks if not keep]
    for t in dropped:
        q.discard(t)
    live = [t for t, keep in tasks if keep]
    expected = Scheduler.order_ready(live)
    got = [entry[3] for entry in q.pop_entries(q.snapshot_token)]
    assert got == expected


def test_ready_queue_defers_entries_pushed_mid_iteration():
    """A task pushed during a pump waits for the next snapshot, exactly
    like the old iterate-over-a-sorted-copy loop."""
    q = ReadyQueue()
    for i in range(3):
        t = Task(f"cmd{i}")
        t.task_id = f"t{i + 1}"
        t.seq = i + 1
        q.push(t)
    snapshot = q.snapshot_token
    seen = []
    for entry in q.pop_entries(snapshot):
        task = entry[3]
        seen.append(task.task_id)
        if task.task_id == "t1":
            late = Task("late")
            late.task_id = "t0"
            late.seq = 0  # would sort *first* if not deferred
            q.push(late)
        q.discard(task)
    assert seen == ["t1", "t2", "t3"]
    # the deferred push is back on the heap for the next round
    assert [e[3].task_id for e in q.pop_entries(q.snapshot_token)] == ["t0"]


def test_ready_queue_restore_and_supersede():
    q = ReadyQueue()
    a, b = Task("a"), Task("b")
    a.task_id, a.seq = "ta", 1
    b.task_id, b.seq = "tb", 2
    q.push(a)
    q.push(b)
    stash = []
    for entry in q.pop_entries(q.snapshot_token):
        stash.append(entry)  # neither placed
    for entry in stash:
        q.restore(entry)
    # re-pushing b supersedes its restored entry: no duplicate yield
    b.priority = 5.0
    q.push(b)
    got = [e[3].task_id for e in q.pop_entries(q.snapshot_token)]
    assert got == ["tb", "ta"]
    assert len(q) == 2


# -- transfer-table saturation fast path vs. arithmetic ----------------


@st.composite
def transfer_ops(draw):
    worker_limit = draw(st.one_of(st.none(), st.integers(0, 3)))
    source_limit = draw(st.one_of(st.none(), st.integers(0, 3)))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["begin", "complete", "relimit"]),
                st.sampled_from(file_names),
                st.sampled_from(worker_ids + [MANAGER_SOURCE]),
                st.sampled_from(worker_ids),
                st.one_of(st.none(), st.integers(0, 3)),
            ),
            max_size=25,
        )
    )
    return worker_limit, source_limit, ops


@settings(max_examples=200, deadline=None)
@given(transfer_ops())
def test_source_available_matches_limit_arithmetic(spec):
    worker_limit, source_limit, ops = spec
    table = TransferTable(worker_limit=worker_limit, source_limit=source_limit)
    for kind, name, source, dest, newlimit in ops:
        if kind == "begin":
            if not table.in_flight(name, dest):
                table.begin(name, source, dest, size=1)
        elif kind == "complete":
            active = table.active()
            if active:
                table.complete(active[0].transfer_id)
        else:
            table.worker_limit = newlimit
        for s in worker_ids + [MANAGER_SOURCE]:
            limit = table.limit_for(s)
            arithmetic = limit is None or table.source_load(s) < limit
            assert table.source_available(s) == arithmetic, (
                f"saturation view diverged for {s} after {kind}"
            )
        candidates = worker_ids + [MANAGER_SOURCE]
        expected = [
            s
            for s in candidates
            if table.limit_for(s) is None
            or table.source_load(s) < table.limit_for(s)
        ]
        assert table.sources_with_capacity(candidates) == expected


@settings(max_examples=100, deadline=None)
@given(cluster_state())
def test_plan_transfers_matches_arithmetic_availability(state):
    """The plan built on the saturation fast path equals the plan built
    when every availability check recomputes from raw loads."""
    sched, task, _views = state
    fast = sched.plan_transfers(task, "w0", {})
    table = sched.transfers
    original = TransferTable.source_available
    try:
        TransferTable.source_available = TransferTable._computed_available
        slow = sched.plan_transfers(task, "w0", {})
    finally:
        TransferTable.source_available = original
    assert fast.transfers == slow.transfers
    assert fast.pending == slow.pending
    assert fast.deferred == slow.deferred


def test_minitask_zero_limits_still_unavailable():
    """limit ≤ 0 saturates sources even at zero load (regression: the
    load-driven set alone would report them available)."""
    table = TransferTable(worker_limit=0, source_limit=0)
    assert not table.source_available("w0")
    assert not table.source_available(MANAGER_SOURCE)
    assert table.sources_with_capacity(["w0", MANAGER_SOURCE]) == []


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
