"""Stateful (rule-based) hypothesis testing of the manager's tables.

Drives random interleavings of replica updates, transfer lifecycles,
and worker departures against the File Replica Table and Current
Transfer Table, holding the invariants DESIGN.md §5 lists at every
step.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.replica_table import ReplicaTable
from repro.core.transfer_table import MANAGER_SOURCE, TransferTable

WORKERS = [f"w{i}" for i in range(4)]
FILES = [f"f{i}" for i in range(6)]


class TableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.replicas = ReplicaTable()
        self.transfers = TransferTable(worker_limit=2, source_limit=3)
        self.model_replicas: set[tuple[str, str]] = set()
        self.active_ids: list[str] = []

    # -- replica rules ------------------------------------------------

    @rule(name=st.sampled_from(FILES), worker=st.sampled_from(WORKERS))
    def add_replica(self, name, worker):
        self.replicas.add_replica(name, worker, size=100)
        self.model_replicas.add((name, worker))

    @rule(name=st.sampled_from(FILES), worker=st.sampled_from(WORKERS))
    def remove_replica(self, name, worker):
        self.replicas.remove_replica(name, worker)
        self.model_replicas.discard((name, worker))

    @rule(worker=st.sampled_from(WORKERS))
    def worker_leaves(self, worker):
        self.replicas.remove_worker(worker)
        self.model_replicas = {
            (n, w) for n, w in self.model_replicas if w != worker
        }
        self.transfers.cancel_for_worker(worker)
        self.active_ids = [
            tid
            for tid in self.active_ids
            if any(t.transfer_id == tid for t in self.transfers.active())
        ]

    @rule(name=st.sampled_from(FILES))
    def forget_file(self, name):
        self.replicas.forget_name(name)
        self.model_replicas = {
            (n, w) for n, w in self.model_replicas if n != name
        }

    # -- transfer rules ---------------------------------------------------

    @rule(
        name=st.sampled_from(FILES),
        source=st.sampled_from(WORKERS + [MANAGER_SOURCE]),
        dest=st.sampled_from(WORKERS),
    )
    def begin_transfer(self, name, source, dest):
        if self.transfers.in_flight(name, dest):
            return
        if not self.transfers.source_available(source):
            return
        t = self.transfers.begin(name, source, dest, size=10)
        self.active_ids.append(t.transfer_id)

    @precondition(lambda self: self.active_ids)
    @rule(data=st.data())
    def complete_transfer(self, data):
        tid = data.draw(st.sampled_from(self.active_ids))
        record = self.transfers.complete(tid)
        self.active_ids.remove(tid)
        # arrival: the destination now holds the file
        self.replicas.add_replica(record.cache_name, record.dest_worker, size=100)
        self.model_replicas.add((record.cache_name, record.dest_worker))

    # -- invariants -----------------------------------------------------

    @invariant()
    def replica_tables_match_model(self):
        actual = {
            (n, w) for n in self.replicas.names() for w in self.replicas.locate(n)
        }
        assert actual == self.model_replicas
        assert self.replicas.total_replicas() == len(self.model_replicas)

    @invariant()
    def bidirectional_consistency(self):
        for n, w in self.model_replicas:
            assert self.replicas.has_replica(n, w)
            assert n in self.replicas.holdings(w)

    @invariant()
    def source_loads_match_active(self):
        active = self.transfers.active()
        assert len(active) == len(self.active_ids)
        by_source = {}
        for t in active:
            by_source[t.source] = by_source.get(t.source, 0) + 1
        for source, count in by_source.items():
            assert self.transfers.source_load(source) == count

    @invariant()
    def limits_never_exceeded_by_begin_rule(self):
        # our begin rule respects source_available, so loads stay bounded
        for t in self.transfers.active():
            limit = self.transfers.limit_for(t.source)
            if limit is not None:
                assert self.transfers.source_load(t.source) <= limit

    @invariant()
    def no_duplicate_inbound(self):
        pairs = [(t.cache_name, t.dest_worker) for t in self.transfers.active()]
        assert len(pairs) == len(set(pairs))


TestTables = TableMachine.TestCase
TestTables.settings = settings(max_examples=60, stateful_step_count=40, deadline=None)
