"""Tests for content-addressable cache naming (paper §3.2, Fig. 7)."""


import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.files import (
    BufferFile,
    CacheLevel,
    LocalFile,
    MiniTaskFile,
    TempFile,
    URLFile,
)
from repro.core.naming import (
    Namer,
    buffer_cache_name,
    directory_merkle,
    local_cache_name,
    task_spec_hash,
    url_cache_name,
)
from repro.core.task import MiniTask, Task
from repro.util.hashing import hash_bytes, hash_file


# -- low-level hashing ---------------------------------------------------


def test_hash_bytes_stable():
    assert hash_bytes(b"hello") == hash_bytes(b"hello")
    assert hash_bytes(b"hello") != hash_bytes(b"hello!")


def test_hash_file_matches_hash_bytes(tmp_path):
    p = tmp_path / "x.bin"
    p.write_bytes(b"some content" * 1000)
    assert hash_file(p) == hash_bytes(b"some content" * 1000)


# -- directory Merkle tree ----------------------------------------------


def make_tree(root, spec):
    """Create a directory tree from {name: bytes|dict} spec."""
    for name, value in spec.items():
        path = root / name
        if isinstance(value, dict):
            path.mkdir()
            make_tree(path, value)
        else:
            path.write_bytes(value)


def test_merkle_deterministic(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    spec = {"x.txt": b"one", "sub": {"y.txt": b"two"}}
    a.mkdir()
    b.mkdir()
    make_tree(a, spec)
    make_tree(b, spec)
    assert directory_merkle(a) == directory_merkle(b)


def test_merkle_content_change_changes_root(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir(), b.mkdir()
    make_tree(a, {"sub": {"deep": {"f": b"AAAA"}}})
    make_tree(b, {"sub": {"deep": {"f": b"AAAB"}}})
    assert directory_merkle(a) != directory_merkle(b)


def test_merkle_rename_changes_root(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir(), b.mkdir()
    make_tree(a, {"f1": b"data"})
    make_tree(b, {"f2": b"data"})
    assert directory_merkle(a) != directory_merkle(b)


def test_merkle_symlink_hashes_target_path(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir(), b.mkdir()
    (a / "ln").symlink_to("target1")
    (b / "ln").symlink_to("target2")
    assert directory_merkle(a) != directory_merkle(b)


def test_merkle_symlink_not_followed(tmp_path):
    # a dangling symlink must hash (by target path), not raise; and a
    # symlink to a directory must hash as a link, not recurse into it
    a = tmp_path / "a"
    a.mkdir()
    (a / "dangling").symlink_to("no/such/target")
    first = directory_merkle(a)
    real = tmp_path / "real"
    real.mkdir()
    (real / "f.txt").write_bytes(b"content")
    b = tmp_path / "b"
    b.mkdir()
    (b / "ln").symlink_to(real)
    linked = directory_merkle(b)
    (real / "f.txt").write_bytes(b"changed")
    assert directory_merkle(b) == linked  # link rows ignore target content
    assert first != linked


def test_merkle_empty_directory_still_counts(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir(), b.mkdir()
    assert directory_merkle(a) == directory_merkle(b)  # both empty
    (a / "empty_sub").mkdir()
    assert directory_merkle(a) != directory_merkle(b)
    (b / "empty_sub").mkdir()
    assert directory_merkle(a) == directory_merkle(b)


def test_merkle_non_utf8_entry_names(tmp_path):
    raw = b"bad\xff\xfename"
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir(), b.mkdir()
    for root in (a, b):
        with open(os.path.join(os.fsencode(root), raw), "wb") as f:
            f.write(b"payload")
    assert directory_merkle(a) == directory_merkle(b)
    with open(os.path.join(os.fsencode(a), raw), "wb") as f:
        f.write(b"different")
    assert directory_merkle(a) != directory_merkle(b)


def test_merkle_non_utf8_symlink_target(tmp_path):
    raw = b"target\xff\xfe"
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir(), b.mkdir()
    os.symlink(raw, os.path.join(os.fsencode(a), b"ln"))
    os.symlink(raw, os.path.join(os.fsencode(b), b"ln"))
    assert directory_merkle(a) == directory_merkle(b)
    c = tmp_path / "c"
    c.mkdir()
    os.symlink(raw + b"x", os.path.join(os.fsencode(c), b"ln"))
    assert directory_merkle(a) != directory_merkle(c)


def test_merkle_special_files_do_not_crash(tmp_path):
    a = tmp_path / "a"
    a.mkdir()
    (a / "normal.txt").write_bytes(b"data")
    try:
        os.mkfifo(a / "pipe")
    except (AttributeError, OSError):
        pytest.skip("platform cannot create FIFOs")
    with_fifo = directory_merkle(a)
    b = tmp_path / "b"
    b.mkdir()
    (b / "normal.txt").write_bytes(b"data")
    assert with_fifo != directory_merkle(b)  # the fifo row is recorded


def test_local_cache_name_prefixes(tmp_path):
    f = tmp_path / "plain"
    f.write_bytes(b"x")
    d = tmp_path / "dir"
    d.mkdir()
    assert local_cache_name(f).startswith("file-md5-")
    assert local_cache_name(d).startswith("dir-md5-")


@given(st.dictionaries(
    st.text(alphabet="abcdefg", min_size=1, max_size=6),
    st.binary(max_size=64),
    max_size=5,
))
def test_property_merkle_independent_of_creation_order(tmp_path_factory, spec):
    a = tmp_path_factory.mktemp("order_a")
    b = tmp_path_factory.mktemp("order_b")
    for name in sorted(spec):
        (a / name).write_bytes(spec[name])
    for name in sorted(spec, reverse=True):
        (b / name).write_bytes(spec[name])
    assert directory_merkle(a) == directory_merkle(b)


# -- URL naming ----------------------------------------------------------


def test_url_name_prefers_checksum_header():
    n1 = url_cache_name("http://a/x", {"Content-MD5": "abc"})
    n2 = url_cache_name("http://b/y", {"content-md5": "abc"})
    assert n1 == n2  # checksum dominates URL
    assert n1.startswith("url-sum-")


def test_url_name_uses_etag_and_modified():
    base = {"ETag": "v1", "Last-Modified": "Mon"}
    n1 = url_cache_name("http://a/x", base)
    assert n1.startswith("url-meta-")
    assert url_cache_name("http://a/x", base) == n1
    assert url_cache_name("http://a/x", {"ETag": "v2", "Last-Modified": "Mon"}) != n1
    assert url_cache_name("http://other/x", base) != n1


def test_url_name_falls_back_to_download():
    calls = []

    def fake_download(url):
        calls.append(url)
        return b"the content"

    n = url_cache_name("http://a/x", {}, fake_download)
    assert n == f"url-md5-{hash_bytes(b'the content')}"
    assert calls == ["http://a/x"]


def test_url_name_without_headers_or_download_raises():
    with pytest.raises(ValueError):
        url_cache_name("http://a/x", {})


# -- task spec hashes -------------------------------------------------------


def test_task_spec_hash_sensitive_to_command_and_inputs():
    base = task_spec_hash("untar x", [("x", "file-md5-aaa")])
    assert task_spec_hash("untar x", [("x", "file-md5-aaa")]) == base
    assert task_spec_hash("untar y", [("x", "file-md5-aaa")]) != base
    assert task_spec_hash("untar x", [("x", "file-md5-bbb")]) != base
    assert task_spec_hash("untar x", [("y", "file-md5-aaa")]) != base


def test_task_spec_hash_input_order_irrelevant():
    a = task_spec_hash("cmd", [("a", "n1"), ("b", "n2")])
    b = task_spec_hash("cmd", [("b", "n2"), ("a", "n1")])
    assert a == b


def test_task_spec_hash_env_and_resources_matter():
    base = task_spec_hash("cmd", [], {"cores": 1}, {})
    assert task_spec_hash("cmd", [], {"cores": 2}, {}) != base
    assert task_spec_hash("cmd", [], {"cores": 1}, {"X": "1"}) != base


# -- the Namer policy --------------------------------------------------------


def test_buffer_always_content_named():
    n = Namer(seed=1)
    f1 = BufferFile(b"payload", cache=CacheLevel.TASK)
    f2 = BufferFile(b"payload", cache=CacheLevel.WORKER)
    assert n.assign(f1) == n.assign(f2) == buffer_cache_name(b"payload")


def test_local_worker_level_content_named(tmp_path):
    p = tmp_path / "data"
    p.write_bytes(b"zzz")
    n = Namer(seed=1)
    f = LocalFile(str(p), cache=CacheLevel.WORKER)
    assert n.assign(f) == local_cache_name(p)
    assert f.size == 3


def test_local_workflow_level_random_named(tmp_path):
    p = tmp_path / "data"
    p.write_bytes(b"zzz")
    f1 = LocalFile(str(p), cache=CacheLevel.WORKFLOW)
    f2 = LocalFile(str(p), cache=CacheLevel.WORKFLOW)
    n = Namer(seed=1)
    assert n.assign(f1) != n.assign(f2)
    assert n.assign(f1).startswith("local-rnd-")


def test_random_names_include_run_nonce():
    n1 = Namer(seed=7, run_nonce="runA")
    n2 = Namer(seed=7, run_nonce="runB")
    f1, f2 = TempFile(), TempFile()
    assert n1.assign(f1) != n2.assign(f2)


def test_same_seed_same_nonce_reproducible():
    n1 = Namer(seed=7, run_nonce="run")
    n2 = Namer(seed=7, run_nonce="run")
    assert n1.assign(TempFile()) == n2.assign(TempFile())


def test_assign_idempotent():
    n = Namer(seed=1)
    f = BufferFile(b"x")
    name = n.assign(f)
    assert n.assign(f) == name


def test_url_worker_level_uses_header_fetcher():
    n = Namer(seed=1)

    def fetch(url):
        return {"ETag": "tag-1"}

    n.header_fetcher = fetch
    f = URLFile("http://host/file", cache=CacheLevel.WORKER)
    assert n.assign(f).startswith("url-meta-")


def test_minitask_file_spec_named_and_dedups():
    n = Namer(seed=1)
    src = BufferFile(b"tarball-bytes", cache=CacheLevel.WORKER)
    mt1 = MiniTask("tar xf input").add_input(src, "input")
    mt2 = MiniTask("tar xf input").add_input(src, "input")
    f1 = MiniTaskFile(mt1, cache=CacheLevel.WORKER)
    f2 = MiniTaskFile(mt2, cache=CacheLevel.WORKER)
    assert n.assign(f1) == n.assign(f2)
    assert f1.cache_name.startswith("task-md5-")
    assert f1.dependencies == (src.cache_name,)


def test_minitask_workflow_level_salted_with_nonce():
    src = BufferFile(b"tarball", cache=CacheLevel.WORKER)

    def named(nonce):
        mt = MiniTask("tar xf input").add_input(src, "input")
        f = MiniTaskFile(mt, cache=CacheLevel.WORKFLOW)
        return Namer(seed=1, run_nonce=nonce).assign(f)

    assert named("A") != named("B")


def test_temp_output_named_from_producer():
    n = Namer(seed=1)
    inp = BufferFile(b"in", cache=CacheLevel.WORKER)
    temp = TempFile(cache=CacheLevel.WORKER)
    t = Task("process input > out").add_input(inp, "input").add_output(temp, "out")
    n.assign(temp)  # placeholder random name first
    final = n.name_temp_output(temp, t)
    assert final.startswith("temp-md5-")
    assert temp.producer_task_id == t.task_id
    # identical producing spec -> identical name
    temp2 = TempFile(cache=CacheLevel.WORKER)
    t2 = Task("process input > out").add_input(inp, "input").add_output(temp2, "out")
    assert Namer(seed=2).name_temp_output(temp2, t2) == final


def test_two_temp_outputs_of_one_task_distinct():
    n = Namer(seed=1)
    t = Task("cmd")
    o1, o2 = TempFile(cache=CacheLevel.WORKER), TempFile(cache=CacheLevel.WORKER)
    t.add_output(o1, "outA").add_output(o2, "outB")
    assert n.name_temp_output(o1, t) != n.name_temp_output(o2, t)
