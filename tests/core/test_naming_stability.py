"""Cross-run stability of content-addressed cache names (paper §3.2).

Service mode shares one cache across many client workflows, and the
whole scheme rests on one contract: names at *shareable* cache levels
are derived purely from content/spec — never from the per-run nonce —
so two independent managers (or two tenants of one service) computing
a name for identical content land on identical bytes.  Nothing pinned
this before; these tests are the regression net.
"""

import pytest

from repro.core.files import BufferFile, CacheLevel, LocalFile, MiniTaskFile, TempFile
from repro.core.library import FunctionCall
from repro.core.naming import Namer, task_merkle
from repro.core.task import MiniTask, PythonTask, Task


def two_namers():
    # different seeds AND different nonces: anything that leaks either
    # into a shareable name will differ between the two
    return Namer(seed=1, run_nonce="aaaaaaaaaaaa"), Namer(seed=2, run_nonce="bbbbbbbbbbbb")


def test_buffer_names_identical_across_runs():
    a, b = two_namers()
    for level in (CacheLevel.TASK, CacheLevel.WORKFLOW, CacheLevel.WORKER):
        fa = BufferFile(b"shared payload", level)
        fb = BufferFile(b"shared payload", level)
        assert a.assign(fa) == b.assign(fb)
        assert "aaaaaaaaaaaa" not in fa.cache_name
        assert Namer._shareable(fa)


def test_worker_level_local_names_identical_across_runs(tmp_path):
    path = tmp_path / "input.dat"
    path.write_bytes(b"file content")
    a, b = two_namers()
    fa = LocalFile(str(path), CacheLevel.WORKER)
    fb = LocalFile(str(path), CacheLevel.WORKER)
    assert a.assign(fa) == b.assign(fb)
    assert a.run_nonce not in fa.cache_name
    assert Namer._shareable(fa)


def test_worker_level_minitask_names_identical_across_runs():
    a, b = two_namers()

    def build(namer):
        src = BufferFile(b"tarball bytes", CacheLevel.WORKER)
        namer.assign(src)
        mini = MiniTask("tar -xf input.tar")
        mini.add_input(src, "input.tar")
        f = MiniTaskFile(mini, CacheLevel.WORKER)
        namer.assign(f)
        return f

    fa, fb = build(a), build(b)
    assert fa.cache_name == fb.cache_name
    assert a.run_nonce not in fa.cache_name


def test_non_worker_levels_are_salted_with_the_nonce(tmp_path):
    # the converse contract: names that must NOT outlive the run carry
    # the nonce (directly, or via the rnd random-name scheme)
    path = tmp_path / "input.dat"
    path.write_bytes(b"file content")
    a, b = two_namers()
    fa = LocalFile(str(path), CacheLevel.WORKFLOW)
    fb = LocalFile(str(path), CacheLevel.WORKFLOW)
    assert a.assign(fa) != b.assign(fb)
    assert a.run_nonce in fa.cache_name
    assert not Namer._shareable(fa)


def test_worker_level_temp_output_names_identical_across_runs():
    a, b = two_namers()

    def build(namer):
        src = BufferFile(b"task input", CacheLevel.WORKER)
        namer.assign(src)
        task = Task("produce out").add_input(src, "in.dat")
        out = TempFile(CacheLevel.WORKER)
        task.add_output(out, "out.dat")
        return namer.name_temp_output(out, task)

    assert build(a) == build(b)


def test_shareable_predicate_keys_on_the_rnd_segment():
    a, _ = two_namers()
    f = TempFile()
    a.assign(f)  # temp files get per-run random names
    assert not Namer._shareable(f)
    assert f.cache_name.split("-", 2)[1].startswith("rnd")


# ---------------------------------------------------------------------------
# task_merkle golden hashes: one literal per task kind
#
# Memoization keys persist across runs, managers, and repo versions —
# if any of these literals moves, every existing memo store silently
# stops hitting.  Changing them is an intentional store-format break.
# ---------------------------------------------------------------------------


def _named_buffer(data: bytes) -> BufferFile:
    f = BufferFile(data, CacheLevel.WORKER)
    Namer(seed=1, run_nonce="aaaaaaaaaaaa").assign(f)
    return f


def _command_task() -> Task:
    t = Task("sort in.txt > out.txt").add_input(_named_buffer(b"golden input"), "in.txt")
    t.add_output(TempFile(), "out.txt")
    return t


def test_task_merkle_golden_command():
    assert task_merkle(_command_task()) == "96a673a5e9942a05b2d87611f01f3808"


def test_task_merkle_golden_minitask():
    m = MiniTask("tar -xf in.tar")
    m.add_input(_named_buffer(b"golden input"), "in.tar")
    m.add_output(TempFile(), "out")
    assert task_merkle(m) == "9b43fafb1ee514aa1e150f3eb1ec4220"


def test_task_merkle_golden_python_task():
    # the function itself rides the content-hashed payload *input*; the
    # merkle document sees only a fixed "@pytask" token, so any function
    # shipped with an identical payload buffer lands on the same merkle
    def behaviors_differ():  # pragma: no cover - never executed
        return 1

    pt = PythonTask(behaviors_differ)
    pt.inputs.append((pt.PAYLOAD_NAME, _named_buffer(b"serialized payload")))
    pt.outputs.append((pt.RESULT_NAME, TempFile()))
    assert task_merkle(pt) == "b45f45c2fa7b5fb1aba75d35d31b70f0"


def test_task_merkle_golden_function_call():
    # also pins the argument-serialization format: FunctionCall identity
    # embeds a hash of the pickled (args, kwargs)
    fc = FunctionCall("mylib", "add", 2, 3)
    fc.add_output(TempFile(), "result.bin")
    assert task_merkle(fc) == "55fc9bfc124a9a0b82e1e4ca810f3d67"


def test_task_merkle_sensitivity():
    base = task_merkle(_command_task())
    changed = _command_task()
    changed.command = "sort -r in.txt > out.txt"
    assert task_merkle(changed) != base
    renamed_out = Task("sort in.txt > out.txt").add_input(
        _named_buffer(b"golden input"), "in.txt"
    )
    renamed_out.add_output(TempFile(), "other.txt")
    assert task_merkle(renamed_out) != base
    new_content = Task("sort in.txt > out.txt").add_input(
        _named_buffer(b"different input"), "in.txt"
    )
    new_content.add_output(TempFile(), "out.txt")
    assert task_merkle(new_content) != base
    enved = _command_task()
    enved.env["LC_ALL"] = "C"
    assert task_merkle(enved) != base


def test_task_merkle_ignores_input_declaration_order():
    def build(reverse: bool) -> Task:
        pairs = [
            ("a.txt", _named_buffer(b"content a")),
            ("b.txt", _named_buffer(b"content b")),
        ]
        t = Task("cat a.txt b.txt > out.txt")
        for rn, f in reversed(pairs) if reverse else pairs:
            t.add_input(f, rn)
        t.add_output(TempFile(), "out.txt")
        return t

    assert task_merkle(build(False)) == task_merkle(build(True))


def test_task_merkle_requires_named_inputs():
    t = Task("cat in > out").add_input(BufferFile(b"x", CacheLevel.WORKER), "in")
    with pytest.raises(RuntimeError):
        task_merkle(t)


def test_memo_output_names_identical_across_runs():
    a, b = two_namers()

    def build(namer: Namer) -> str:
        t = _command_task()
        out = t.outputs[0][1]
        return namer.name_task_output(out, t, task_merkle(t))

    name_a, name_b = build(a), build(b)
    assert name_a == name_b
    assert name_a.startswith("memo-md5-")
    assert "aaaaaaaaaaaa" not in name_a  # never run-salted
