"""Cross-run stability of content-addressed cache names (paper §3.2).

Service mode shares one cache across many client workflows, and the
whole scheme rests on one contract: names at *shareable* cache levels
are derived purely from content/spec — never from the per-run nonce —
so two independent managers (or two tenants of one service) computing
a name for identical content land on identical bytes.  Nothing pinned
this before; these tests are the regression net.
"""

from repro.core.files import BufferFile, CacheLevel, LocalFile, MiniTaskFile, TempFile
from repro.core.naming import Namer
from repro.core.task import MiniTask, Task


def two_namers():
    # different seeds AND different nonces: anything that leaks either
    # into a shareable name will differ between the two
    return Namer(seed=1, run_nonce="aaaaaaaaaaaa"), Namer(seed=2, run_nonce="bbbbbbbbbbbb")


def test_buffer_names_identical_across_runs():
    a, b = two_namers()
    for level in (CacheLevel.TASK, CacheLevel.WORKFLOW, CacheLevel.WORKER):
        fa = BufferFile(b"shared payload", level)
        fb = BufferFile(b"shared payload", level)
        assert a.assign(fa) == b.assign(fb)
        assert "aaaaaaaaaaaa" not in fa.cache_name
        assert Namer._shareable(fa)


def test_worker_level_local_names_identical_across_runs(tmp_path):
    path = tmp_path / "input.dat"
    path.write_bytes(b"file content")
    a, b = two_namers()
    fa = LocalFile(str(path), CacheLevel.WORKER)
    fb = LocalFile(str(path), CacheLevel.WORKER)
    assert a.assign(fa) == b.assign(fb)
    assert a.run_nonce not in fa.cache_name
    assert Namer._shareable(fa)


def test_worker_level_minitask_names_identical_across_runs():
    a, b = two_namers()

    def build(namer):
        src = BufferFile(b"tarball bytes", CacheLevel.WORKER)
        namer.assign(src)
        mini = MiniTask("tar -xf input.tar")
        mini.add_input(src, "input.tar")
        f = MiniTaskFile(mini, CacheLevel.WORKER)
        namer.assign(f)
        return f

    fa, fb = build(a), build(b)
    assert fa.cache_name == fb.cache_name
    assert a.run_nonce not in fa.cache_name


def test_non_worker_levels_are_salted_with_the_nonce(tmp_path):
    # the converse contract: names that must NOT outlive the run carry
    # the nonce (directly, or via the rnd random-name scheme)
    path = tmp_path / "input.dat"
    path.write_bytes(b"file content")
    a, b = two_namers()
    fa = LocalFile(str(path), CacheLevel.WORKFLOW)
    fb = LocalFile(str(path), CacheLevel.WORKFLOW)
    assert a.assign(fa) != b.assign(fb)
    assert a.run_nonce in fa.cache_name
    assert not Namer._shareable(fa)


def test_worker_level_temp_output_names_identical_across_runs():
    a, b = two_namers()

    def build(namer):
        src = BufferFile(b"task input", CacheLevel.WORKER)
        namer.assign(src)
        task = Task("produce out").add_input(src, "in.dat")
        out = TempFile(CacheLevel.WORKER)
        task.add_output(out, "out.dat")
        return namer.name_temp_output(out, task)

    assert build(a) == build(b)


def test_shareable_predicate_keys_on_the_rnd_segment():
    a, _ = two_namers()
    f = TempFile()
    a.assign(f)  # temp files get per-run random names
    assert not Namer._shareable(f)
    assert f.cache_name.split("-", 2)[1].startswith("rnd")
