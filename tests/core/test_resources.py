"""Unit tests for resource specification and pool accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.resources import ResourceExhausted, ResourcePool, Resources


def test_defaults():
    r = Resources()
    assert r.cores == 1.0
    assert r.memory == 0 and r.disk == 0 and r.gpus == 0


def test_negative_rejected():
    with pytest.raises(ValueError):
        Resources(cores=-1)
    with pytest.raises(ValueError):
        Resources(memory=-5)


def test_add_sub():
    a = Resources(cores=2, memory=100, disk=10, gpus=1)
    b = Resources(cores=1, memory=50, disk=5, gpus=0)
    assert a + b == Resources(cores=3, memory=150, disk=15, gpus=1)
    assert a - b == Resources(cores=1, memory=50, disk=5, gpus=1)


def test_fits_within():
    small = Resources(cores=1, memory=10)
    big = Resources(cores=4, memory=100)
    assert small.fits_within(big)
    assert not big.fits_within(small)
    assert big.fits_within(big)


def test_exceeds_names_dimensions():
    used = Resources(cores=2, memory=200, disk=1, gpus=0)
    limit = Resources(cores=1, memory=100, disk=10, gpus=0)
    assert used.exceeds(limit) == ["cores", "memory"]
    assert limit.exceeds(used) == ["disk"]


def test_scaled_growth():
    r = Resources(cores=2, memory=100, disk=50, gpus=1)
    s = r.scaled(2)
    assert s == Resources(cores=4, memory=200, disk=100, gpus=1)
    with pytest.raises(ValueError):
        r.scaled(-1)


def test_round_trip_dict():
    r = Resources(cores=3, memory=7, disk=9, gpus=2)
    assert Resources.from_dict(r.to_dict()) == r


def test_from_dict_ignores_unknown():
    assert Resources.from_dict({"cores": 2, "bogus": 1}) == Resources(cores=2)


def test_pool_allocate_release():
    pool = ResourcePool(Resources(cores=4, memory=100, disk=100, gpus=1))
    pool.allocate("t1", Resources(cores=2, memory=50))
    assert pool.available() == Resources(cores=2, memory=50, disk=100, gpus=1)
    pool.allocate("t2", Resources(cores=2, memory=50))
    assert not pool.can_fit(Resources(cores=1))
    with pytest.raises(ResourceExhausted):
        pool.allocate("t3", Resources(cores=1))
    released = pool.release("t1")
    assert released == Resources(cores=2, memory=50)
    assert pool.can_fit(Resources(cores=2))


def test_pool_duplicate_holder_rejected():
    pool = ResourcePool(Resources(cores=4))
    pool.allocate("t1", Resources(cores=1))
    with pytest.raises(ValueError):
        pool.allocate("t1", Resources(cores=1))


def test_pool_release_unknown_holder():
    pool = ResourcePool(Resources(cores=4))
    with pytest.raises(KeyError):
        pool.release("nope")


def test_pool_len_and_holders():
    pool = ResourcePool(Resources(cores=4))
    pool.allocate("a", Resources(cores=1))
    pool.allocate("b", Resources(cores=1))
    assert len(pool) == 2
    assert set(pool.holders()) == {"a", "b"}


resources_st = st.builds(
    Resources,
    # integer-valued cores: float arithmetic identities hold exactly
    cores=st.integers(min_value=0, max_value=64).map(float),
    memory=st.integers(min_value=0, max_value=1 << 20),
    disk=st.integers(min_value=0, max_value=1 << 20),
    gpus=st.integers(min_value=0, max_value=8),
)


@given(resources_st, resources_st)
def test_property_add_then_sub_identity(a, b):
    assert (a + b) - b == a


@given(resources_st, resources_st)
def test_property_sum_fits_iff_parts_fit_alone(a, b):
    total = a + b
    assert a.fits_within(total) and b.fits_within(total)


@given(st.lists(resources_st, max_size=8))
def test_property_pool_never_overcommits(requests):
    capacity = Resources(cores=16, memory=1 << 14, disk=1 << 14, gpus=4)
    pool = ResourcePool(capacity)
    for i, req in enumerate(requests):
        if pool.can_fit(req):
            pool.allocate(str(i), req)
        assert pool.allocated.fits_within(capacity)
