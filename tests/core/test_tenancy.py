"""Per-tenant accounting, quotas, and the cross-tenant cache-hit path.

Drives the ControlPlane against the scripted FakePort (same harness as
test_control_plane) and observes the TenantAccount bookkeeping plus the
``tenant.<name>.*`` gauges the service's status table is built from.
"""

from repro.core.control_plane import NO_SOURCE
from repro.core.files import TempFile
from repro.core.task import Task

from tests.core.test_control_plane import add_worker, finish, make_control


def submit_for(control, tenant, name="job", inputs=()):
    t = Task(f"run {name}")
    t.set_tenant(tenant)
    for sandbox, f in inputs:
        t.add_input(f, sandbox)
    control.submit(t)
    return t


def gauge(control, tenant, field):
    # counters and gauges share the .value accessor; go through the
    # snapshot so the instrument kind does not matter
    return control.metrics.snapshot()[f"tenant.{tenant}.{field}"]["value"]


def test_accounts_track_submit_run_finish():
    port, control = make_control()
    add_worker(port, control, "wA")
    t = submit_for(control, "alice")
    acct = control.tenant_account("alice")
    assert acct.submitted == 1 and acct.outstanding == 1
    assert gauge(control, "alice", "tasks_queued") == 1

    control.pump()
    assert acct.running == 1
    assert gauge(control, "alice", "tasks_running") == 1
    assert gauge(control, "alice", "tasks_queued") == 0

    finish(port, control, t)
    assert acct.done == 1 and acct.outstanding == 0 and acct.running == 0
    assert gauge(control, "alice", "tasks_done") == 1


def test_failed_task_counts_against_failed_not_done():
    port, control = make_control(loss_retries=0)
    add_worker(port, control, "wA")
    t = submit_for(control, "alice")
    t.max_retries = 0
    control.pump()
    finish(port, control, t, exit_code=1, register_outputs=False)
    acct = control.tenant_account("alice")
    assert acct.failed == 1 and acct.done == 0 and acct.outstanding == 0
    assert gauge(control, "alice", "tasks_failed") == 1


def test_task_quota_blocks_after_headroom_exhausted():
    port, control = make_control()
    control.set_tenant_quota("alice", task_quota=2)
    assert control.tenant_submit_blocked("alice") is None
    submit_for(control, "alice")
    submit_for(control, "alice")
    reason = control.tenant_submit_blocked("alice")
    assert reason is not None and "quota" in reason
    # completing a task restores headroom
    add_worker(port, control, "wA")
    control.pump()
    running = list(control._running.values())
    finish(port, control, running[0])
    assert control.tenant_submit_blocked("alice") is None


def test_byte_quota_blocks_declares_but_not_cache_hits():
    port, control = make_control()
    control.set_tenant_quota("alice", byte_quota=100)
    assert control.tenant_charge_bytes("alice", 80) is None
    reason = control.tenant_charge_bytes("alice", 30)
    assert reason is not None and "quota" in reason
    acct = control.tenant_account("alice")
    assert acct.bytes_declared == 80
    # a cross-tenant cache hit costs zero bytes and bumps the hit counter
    control.tenant_cache_hit("alice", "buffer-md5-abc", 1000)
    assert acct.bytes_declared == 80
    assert acct.cache_hits == 1
    assert gauge(control, "alice", "cache_hits") == 1


def test_cache_hit_emits_cache_shared_event():
    port, control = make_control()
    seen = []
    control.log.attach(lambda ev: seen.append(ev))
    control.tenant_cache_hit("bob", "buffer-md5-abc", 42)
    kinds = [ev.kind for ev in seen]
    assert "cache_shared" in kinds
    ev = next(ev for ev in seen if ev.kind == "cache_shared")
    assert ev.file == "buffer-md5-abc" and ev.size == 42 and ev.category == "bob"


def test_quota_headroom_gauge_reflects_limits():
    port, control = make_control()
    control.tenant_account("alice")
    assert gauge(control, "alice", "quota_headroom") == -1  # unlimited
    control.set_tenant_quota("alice", task_quota=5)
    assert gauge(control, "alice", "quota_headroom") == 5
    submit_for(control, "alice")
    assert gauge(control, "alice", "quota_headroom") == 4
    control.set_tenant_quota("alice", task_quota=None)
    assert gauge(control, "alice", "quota_headroom") == -1


def test_tenant_namespace_tracks_names():
    port, control = make_control()
    acct = control.tenant_account("alice")
    control.tenant_add_name("alice", "buffer-md5-abc")
    control.tenant_add_name("alice", "buffer-md5-abc")
    assert acct.names == {"buffer-md5-abc"}


def test_default_quotas_apply_to_new_tenants():
    port, control = make_control(default_task_quota=1, default_byte_quota=10)
    submit_for(control, "carol")
    assert control.tenant_submit_blocked("carol") is not None
    assert control.tenant_charge_bytes("carol", 11) is not None


def test_regeneration_keeps_tenant_done_ledger_consistent():
    # the requeue path must mirror the global done_count on the tenant
    # ledger: un-count the rescinded completion, count it again exactly
    # once on re-delivery (regression: acct.done and the tasks_done
    # counter drifted by one per regeneration)
    port, control = make_control()
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    temp = TempFile()
    temp.cache_name = "mid"
    control.declare(temp, NO_SOURCE, 0)
    producer = Task("make").add_output(temp, "out")
    producer.set_tenant("alice")
    control.submit(producer)
    control.pump()
    finish(port, control, producer)
    acct = control.tenant_account("alice")
    assert acct.done == 1 == control.done_count
    assert gauge(control, "alice", "tasks_done") == 1

    consumer = Task("use").add_input(temp, "mid")
    consumer.set_tenant("alice")
    control.submit(consumer)
    control.pump()
    # lose the only replica: the producer is resurrected
    lost = consumer.worker_id
    port.connected.discard(lost)
    control.worker_left(lost)
    assert acct.done == 0 == control.done_count
    assert acct.regens == 1 and acct.outstanding == 2
    assert gauge(control, "alice", "regenerations") == 1

    control.pump()
    finish(port, control, producer)
    # re-delivery restores the ledger without double counting
    assert acct.done == 1 == control.done_count
    assert gauge(control, "alice", "tasks_done") == 1


def test_worker_loss_returns_task_to_queued_accounting():
    port, control = make_control()
    add_worker(port, control, "wA")
    t = submit_for(control, "alice")
    control.pump()
    acct = control.tenant_account("alice")
    assert acct.running == 1
    control.worker_left("wA")
    # task is requeued: outstanding again, no longer running
    assert acct.running == 0 and acct.outstanding == 1
    assert gauge(control, "alice", "tasks_queued") == 1
