"""Unit tests for Manager behaviour that needs no worker processes."""


import pytest

import os

from repro.core.files import CacheLevel
from repro.core.library import FunctionCall
from repro.core.manager import Manager, ManagerError, _ClientSession
from repro.core.task import PythonTask, Task
from repro.core.transfer_table import MANAGER_SOURCE


@pytest.fixture()
def manager():
    m = Manager()
    yield m
    m.close()


def test_listens_on_localhost(manager):
    assert manager.host == "127.0.0.1"
    assert manager.port > 0


def test_declare_buffer_names_and_sizes(manager):
    f = manager.declare_buffer(b"payload")
    assert f.cache_name.startswith("buffer-md5-")
    assert manager.sizes[f.cache_name] == 7
    assert manager.fixed_sources[f.cache_name] == MANAGER_SOURCE


def test_declare_local_file_and_dir(manager, tmp_path):
    p = tmp_path / "x.bin"
    p.write_bytes(b"ab" * 500)
    f = manager.declare_local(str(p))
    assert manager.sizes[f.cache_name] == 1000
    d = tmp_path / "tree"
    d.mkdir()
    (d / "member").write_bytes(b"xyz")
    fd = manager.declare_local(str(d), cache="worker")
    assert fd.cache_name.startswith("dir-md5-")
    assert manager.sizes[fd.cache_name] == 3


def test_declare_local_worker_level_content_named(manager, tmp_path):
    p = tmp_path / "data"
    p.write_bytes(b"stable content")
    f1 = manager.declare_local(str(p), cache="worker")
    m2 = Manager()
    try:
        f2 = m2.declare_local(str(p), cache="worker")
        assert f1.cache_name == f2.cache_name
    finally:
        m2.close()


def test_declare_url_sets_host_source(manager, tmp_path):
    p = tmp_path / "remote.bin"
    p.write_bytes(b"remote")
    f = manager.declare_url(f"file://{p}")
    assert manager.fixed_sources[f.cache_name] == "url:localfs"
    assert manager.sizes[f.cache_name] == 6


def test_declare_url_worker_level_uses_stat_headers(manager, tmp_path):
    p = tmp_path / "remote.bin"
    p.write_bytes(b"remote")
    f = manager.declare_url(f"file://{p}", cache="worker")
    assert f.cache_name.startswith("url-meta-")
    # touching content changes the derived name for a fresh manager
    p.write_bytes(b"remote2!")
    m2 = Manager()
    try:
        f2 = m2.declare_url(f"file://{p}", cache="worker")
        assert f2.cache_name != f.cache_name
    finally:
        m2.close()


def test_declare_untar_builds_minitask(manager, tmp_path):
    p = tmp_path / "pkg.tar"
    p.write_bytes(b"not really a tar")
    tarball = manager.declare_local(str(p))
    env = manager.declare_untar(tarball)
    assert env.cache_name.startswith("task-md5-")
    assert manager.fixed_sources[env.cache_name] == "@minitask"
    assert env.mini_task.inputs[0][1] is tarball


def test_minitask_with_undeclared_input_rejected(manager):
    from repro.core.files import BufferFile
    from repro.core.task import MiniTask

    mini = MiniTask("cmd").add_input(BufferFile(b"x"), "in")
    with pytest.raises(ManagerError):
        manager.declare_minitask(mini)


def test_submit_undeclared_input_rejected(manager):
    from repro.core.files import BufferFile

    t = Task("cmd").add_input(BufferFile(b"x"), "in")
    with pytest.raises(ManagerError):
        manager.submit(t)
    assert manager.empty()


def test_submit_twice_rejected(manager):
    t = Task("cmd")
    manager.submit(t)
    with pytest.raises(ManagerError):
        manager.submit(t)


def test_function_call_requires_known_library(manager):
    with pytest.raises(ManagerError):
        manager.submit(FunctionCall("ghost", "fn"))


def test_create_library_twice_rejected(manager):
    manager.create_library("lib", [len])
    with pytest.raises(ManagerError):
        manager.create_library("lib", [len])


def test_python_task_gets_payload_and_result_files(manager):
    t = PythonTask(len, [1, 2])
    manager.submit(t)
    names = [n for n, _ in t.inputs]
    assert PythonTask.PAYLOAD_NAME in names
    assert t.outputs[-1][0] == PythonTask.RESULT_NAME
    # payload is task-lifetime: collected as soon as the task is done
    payload_file = dict(t.inputs)[PythonTask.PAYLOAD_NAME]
    assert payload_file.cache_level == CacheLevel.TASK


def test_wait_timeout_and_empty(manager):
    assert manager.empty()
    assert manager.wait(timeout=0.05) is None
    t = Task("cmd")
    manager.submit(t)  # no workers: stays outstanding
    assert not manager.empty()


def test_fetch_bytes_of_buffer_and_local(manager, tmp_path):
    b = manager.declare_buffer(b"direct")
    assert manager.fetch_bytes(b) == b"direct"
    p = tmp_path / "f"
    p.write_bytes(b"from disk")
    f = manager.declare_local(str(p))
    assert manager.fetch_bytes(f) == b"from disk"


def test_fetch_bytes_without_replica_raises(manager):
    temp = manager.declare_temp()
    with pytest.raises(ManagerError, match="no worker holds"):
        manager.fetch_bytes(temp)


def test_close_idempotent(manager):
    manager.close()
    manager.close()


def test_context_manager():
    with Manager() as m:
        m.declare_buffer(b"x")
    assert m._closed


def test_run_until_done_times_out_without_workers(manager):
    manager.submit(Task("cmd"))
    with pytest.raises(ManagerError, match="did not finish"):
        manager.run_until_done(timeout=0.3)


# -- client-session hygiene (service mode) ---------------------------


def test_client_local_paths_resolve_inside_the_configured_root(tmp_path):
    root = tmp_path / "exports"
    root.mkdir()
    inside = root / "data.txt"
    inside.write_text("ok")
    link = root / "link"
    link.symlink_to("/etc")
    with Manager(client_local_root=str(root)) as m:
        svc = m.service
        sess = _ClientSession("alice")
        real = os.path.realpath(str(inside))
        assert svc._local_path(sess, "data.txt") == real
        assert svc._local_path(sess, str(inside)) == real
        with pytest.raises(ManagerError, match="outside"):
            svc._local_path(sess, "../escape")
        with pytest.raises(ManagerError, match="outside"):
            svc._local_path(sess, "/etc/passwd")
        # symlinks are resolved before the containment check
        with pytest.raises(ManagerError, match="outside"):
            svc._local_path(sess, "link/passwd")
        # the loopback session is the in-process application: unrestricted
        assert svc._local_path(svc.loopback, "/etc/passwd") == "/etc/passwd"


def test_client_local_paths_disabled_without_a_root(manager):
    with pytest.raises(ManagerError, match="client_local_root"):
        manager.service._local_path(_ClientSession("alice"), "/etc/passwd")


def test_detached_session_notice_buffer_is_capped(manager):
    svc = manager.service
    sess = _ClientSession("alice")
    svc.sessions[sess.token] = sess
    cap = _ClientSession.MAX_BUFFERED
    for i in range(cap + 5):
        svc._notify(sess, {"type": "task_result", "task_id": f"t{i}"})
    assert len(sess.buffered) == cap
    assert sess.dropped == 5
    # the oldest notices are the ones evicted
    assert sess.buffered[0]["task_id"] == "t5"


def test_idle_detached_sessions_are_reaped(manager):
    svc = manager.service
    idle = _ClientSession("alice")
    idle.detached_at = 1000.0
    svc.sessions[idle.token] = idle
    busy = _ClientSession("bob")
    busy.detached_at = 1000.0
    busy.tasks.add("t1")  # outstanding work: never reaped
    svc.sessions[busy.token] = busy
    reaped = manager._reap_sessions(1000.0 + manager.client_session_ttl + 1)
    assert reaped == [idle.session_id]
    assert idle.token not in svc.sessions and busy.token in svc.sessions
    expired = list(manager.log.events("client_expired"))
    assert expired and expired[0].category == "alice"
