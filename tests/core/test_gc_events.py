"""Tests for garbage collection, eviction planning, and the event log."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import (
    EventLog,
    completion_series,
    makespan,
    task_rows,
    worker_busy,
)
from repro.core.files import BufferFile, CacheLevel, FileRegistry
from repro.core.gc import (
    CacheEntryInfo,
    collect_task_inputs,
    collect_workflow,
    plan_eviction,
)
from repro.core.replica_table import ReplicaTable


def reg_with(levels: dict[str, CacheLevel]) -> FileRegistry:
    reg = FileRegistry()
    for name, level in levels.items():
        f = BufferFile(name.encode(), cache=level)
        f.cache_name = name
        reg.register(f)
    return reg


# -- workflow-end collection --------------------------------------------


def test_collect_workflow_spares_worker_level():
    reg = reg_with(
        {
            "t": CacheLevel.TASK,
            "wf": CacheLevel.WORKFLOW,
            "wk": CacheLevel.WORKER,
        }
    )
    rt = ReplicaTable()
    for name in ["t", "wf", "wk"]:
        rt.add_replica(name, "w1")
        rt.add_replica(name, "w2")
    deletions = collect_workflow(reg, rt)
    assert deletions == {"w1": {"t", "wf"}, "w2": {"t", "wf"}}


def test_collect_workflow_empty_when_nothing_cached():
    assert collect_workflow(reg_with({"x": CacheLevel.TASK}), ReplicaTable()) == {}


def test_collect_task_inputs_only_unreferenced_task_level():
    reg = reg_with({"a": CacheLevel.TASK, "b": CacheLevel.TASK, "c": CacheLevel.WORKFLOW})
    out = collect_task_inputs(["a", "b", "c", "unknown"], reg, {"b": 2})
    assert out == {"a"}


# -- eviction ---------------------------------------------------------------


def entry(name, size=100, level=CacheLevel.WORKER, last_used=0.0):
    return CacheEntryInfo(cache_name=name, size=size, level=level, last_used=last_used)


def test_eviction_prefers_short_lifetimes_then_lru():
    entries = [
        entry("worker_old", level=CacheLevel.WORKER, last_used=0),
        entry("wf_new", level=CacheLevel.WORKFLOW, last_used=100),
        entry("wf_old", level=CacheLevel.WORKFLOW, last_used=1),
    ]
    victims = plan_eviction(entries, needed_bytes=150)
    assert victims == ["wf_old", "wf_new"]


def test_eviction_never_touches_pinned():
    entries = [entry("pinned", size=1000), entry("free", size=1000)]
    assert plan_eviction(entries, 500, pinned={"pinned"}) == ["free"]


def test_eviction_zero_needed_is_empty():
    assert plan_eviction([entry("a")], 0) == []


def test_eviction_may_underfree():
    assert plan_eviction([entry("a", size=10)], 10**6) == ["a"]


@given(
    st.lists(
        st.tuples(st.integers(1, 1000), st.sampled_from(list(CacheLevel))),
        max_size=20,
    ),
    st.integers(0, 5000),
)
def test_property_eviction_frees_enough_when_possible(sizes_levels, needed):
    entries = [
        entry(f"e{i}", size=s, level=lvl, last_used=i)
        for i, (s, lvl) in enumerate(sizes_levels)
    ]
    victims = plan_eviction(entries, needed)
    freed = sum(e.size for e in entries if e.cache_name in victims)
    total = sum(e.size for e in entries)
    if needed <= total:
        assert freed >= needed or freed == total
    # never evicts more than one extra entry beyond what was needed
    if victims:
        without_last = freed - next(
            e.size for e in entries if e.cache_name == victims[-1]
        )
        assert without_last < needed


# -- event log ----------------------------------------------------------------


def test_event_log_rejects_unknown_kind():
    log = EventLog()
    with pytest.raises(ValueError):
        log.emit(0.0, "bogus")


def test_task_rows_extraction_and_sorting():
    log = EventLog()
    log.emit(1.0, "task_start", worker="w1", task="t2", category="blast")
    log.emit(0.5, "task_start", worker="w2", task="t1", category="blast")
    log.emit(2.0, "task_end", task="t2", worker="w1")
    log.emit(3.0, "task_end", task="t1", worker="w2")
    rows = task_rows(log)
    assert [r.task_id for r in rows] == ["t1", "t2"]
    assert rows[0].start == 0.5 and rows[0].end == 3.0
    assert rows[1].worker == "w1"


def test_task_rows_drops_unfinished():
    log = EventLog()
    log.emit(1.0, "task_start", worker="w1", task="t1")
    assert task_rows(log) == []


def test_worker_busy_union_and_idle():
    log = EventLog()
    log.emit(0.0, "worker_join", worker="w1")
    log.emit(1.0, "transfer_start", worker="w1", file="f")
    log.emit(3.0, "transfer_end", worker="w1", file="f")
    log.emit(2.0, "task_start", worker="w1", task="t1")
    log.emit(6.0, "task_end", worker="w1", task="t1")
    log.emit(10.0, "worker_leave", worker="w1")
    busy = worker_busy(log, horizon=10.0)["w1"]
    assert busy.connected == 10.0
    assert busy.executing == 4.0
    assert busy.transferring == 2.0
    # union of [1,3] and [2,6] is [1,6] => 5 busy, 5 idle
    assert busy.idle == pytest.approx(5.0)


def test_worker_busy_closes_open_intervals_at_horizon():
    log = EventLog()
    log.emit(0.0, "worker_join", worker="w1")
    log.emit(4.0, "task_start", worker="w1", task="t1")
    busy = worker_busy(log, horizon=10.0)["w1"]
    assert busy.executing == 6.0
    assert busy.connected == 10.0


def test_worker_busy_merges_overlapping_same_kind():
    log = EventLog()
    log.emit(0.0, "worker_join", worker="w1")
    log.emit(0.0, "task_start", worker="w1", task="a")
    log.emit(1.0, "task_start", worker="w1", task="b")
    log.emit(2.0, "task_end", worker="w1", task="a")
    log.emit(5.0, "task_end", worker="w1", task="b")
    busy = worker_busy(log, horizon=5.0)["w1"]
    assert busy.executing == 5.0  # union, not sum


def test_completion_series_monotone():
    log = EventLog()
    for i in range(10):
        log.emit(float(i), "task_start", worker="w", task=f"t{i}")
        log.emit(float(i) + 0.5, "task_end", worker="w", task=f"t{i}", category="c")
    series = completion_series(log, points=10)
    counts = [c for _, c in series]
    assert counts == sorted(counts)
    assert counts[-1] == 10
    assert completion_series(log, points=5, category="missing") == []


def test_makespan():
    log = EventLog()
    assert makespan(log) == 0.0
    log.emit(3.0, "task_end", task="t1", worker="w")
    log.emit(7.0, "task_end", task="t2", worker="w")
    assert makespan(log) == 7.0


@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(CacheLevel)),
            st.sets(st.sampled_from(["w1", "w2", "w3"]), min_size=1, max_size=3),
        ),
        max_size=12,
    )
)
def test_property_collect_workflow_exact(level_holders):
    reg = FileRegistry()
    rt = ReplicaTable()
    names_by_level = {}
    for i, (level, holders) in enumerate(level_holders):
        f = BufferFile(f"{i}".encode(), cache=level)
        f.cache_name = f"n{i}"
        reg.register(f)
        names_by_level[f.cache_name] = level
        for w in holders:
            rt.add_replica(f.cache_name, w)
    deletions = collect_workflow(reg, rt)
    deleted = {n for names in deletions.values() for n in names}
    for name, level in names_by_level.items():
        if rt.locate(name):
            if level == CacheLevel.WORKER:
                assert name not in deleted
            else:
                assert name in deleted
