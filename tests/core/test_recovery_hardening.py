"""Failure-recovery hardening in the shared control plane.

Covers the chaos-readiness machinery: per-(object, source) transfer
retry budgets with reset-on-success, exponential backoff holdoffs,
per-worker failure scores and the placement blocklist, corruption
treated as source-replica loss, deep (recursive) lineage regeneration,
and the retries-exhausted path that fails consumers instead of looping.
All through a FakePort with a hand-advanced clock — no sleeps.
"""

from repro.core.control_plane import NO_SOURCE
from repro.core.files import TempFile
from repro.core.scheduler import GATE_AVOID, GATE_BANNED, GATE_OK
from repro.core.task import Task, TaskState
from repro.core.transfer_table import MANAGER_SOURCE

from tests.core.test_control_plane import (
    add_worker,
    declared,
    finish,
    make_control,
)


def _temp(control, name):
    f = TempFile()
    f.cache_name = name
    control.declare(f, NO_SOURCE, 0)
    return f


def _fail_transfer(control, record, corrupt=False):
    control.on_cache_invalid(
        record.dest_worker,
        record.cache_name,
        record.transfer_id,
        reason="injected",
        corrupt=corrupt,
    )


def _start_peer_fetch(port, control, name, src, dst):
    """Start a peer transfer and return its Transfer record."""
    control._start_transfer(name, src, dst)
    return port.fetches[-1]


# -- per-source retry accounting --------------------------------------


def test_retry_budget_is_per_source_not_per_object():
    port, control = make_control(transfer_retries=1, transfer_backoff_base=0.0)
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    add_worker(port, control, "wC")
    declared(control, "obj", MANAGER_SOURCE, 100)
    control.register_replica("wA", "obj", 100, store=True)
    control.register_replica("wB", "obj", 100, store=True)
    # burn wA's budget for this object (2 failures > transfer_retries=1)
    for _ in range(2):
        record = _start_peer_fetch(port, control, "obj", "wA", "wC")
        _fail_transfer(control, record)
    # wA is banned for this object, but wB's budget is untouched
    assert control._transfer_gate("obj", "wA") == GATE_BANNED
    assert control._transfer_gate("obj", "wB") == GATE_OK
    # budgets are keyed by (object, source): a different object from the
    # burned source is unaffected
    assert control._transfer_gate("other-obj", "wA") == GATE_OK


def test_transfer_success_resets_failure_budget():
    port, control = make_control(transfer_retries=1, transfer_backoff_base=0.0)
    add_worker(port, control, "wA")
    f = declared(control, "data", MANAGER_SOURCE, 100)
    t = Task("use").add_input(f, "data")
    control.submit(t)
    control.pump()
    record = port.pushes[0]
    _fail_transfer(control, record)
    assert control._transfer_attempts[("data", MANAGER_SOURCE)] == 1
    control.pump()
    record = port.pushes[-1]
    control.on_cache_update("wA", "data", 100, record.transfer_id)
    # delivery clears the (object, source) budget entirely
    assert ("data", MANAGER_SOURCE) not in control._transfer_attempts
    assert control._transfer_gate("data", MANAGER_SOURCE) == GATE_OK


# -- backoff -----------------------------------------------------------


def test_failed_transfer_backs_off_then_retries():
    port, control = make_control(transfer_retries=3, transfer_backoff_base=1.0)
    add_worker(port, control, "wA")
    f = declared(control, "data", "url:server", 100)
    t = Task("use").add_input(f, "data")
    control.submit(t)
    control.pump()
    _fail_transfer(control, port.fetches[0])
    # the source is held off, not banned
    assert control._transfer_gate("data", "url:server") == GATE_AVOID
    control.pump()
    assert len(port.fetches) == 1  # no instant retry
    port.time += control.transfer_backoff_max
    assert control._transfer_gate("data", "url:server") == GATE_OK
    control.pump()
    assert len(port.fetches) == 2


def test_backoff_delay_grows_and_caps():
    port, control = make_control(transfer_backoff_base=1.0)
    delays = [control._backoff_delay(1.0, attempt) for attempt in range(1, 12)]
    # jitter is 50-150%, so attempt N is bounded by 1.5 * 2^(N-1)
    for attempt, delay in enumerate(delays, start=1):
        assert delay <= 1.5 * min(control.transfer_backoff_max, 2 ** (attempt - 1))
        assert delay >= 0.5 * min(1.0 * 2 ** (attempt - 1), control.transfer_backoff_max) * 0.99
    # deterministic for a fixed seed
    _, control2 = make_control(transfer_backoff_base=1.0)
    assert delays == [control2._backoff_delay(1.0, a) for a in range(1, 12)]


# -- failure scores and the blocklist ---------------------------------


def _burn_peer(port, control, name_prefix, bad, dest, n):
    """Inject n failed peer transfers served by ``bad`` toward ``dest``."""
    for i in range(n):
        name = f"{name_prefix}{i}"
        declared(control, name, MANAGER_SOURCE, 10)
        control.register_replica(bad, name, 10, store=True)
        record = _start_peer_fetch(port, control, name, bad, dest)
        _fail_transfer(control, record)


def test_repeat_offender_is_blocklisted_and_skipped():
    port, control = make_control(blocklist_threshold=3, transfer_backoff_base=0.0)
    add_worker(port, control, "wBad")
    add_worker(port, control, "wOk")
    _burn_peer(port, control, "x", "wBad", "wOk", 3)
    assert "wBad" in control.blocklist
    assert control.metrics.counter("workers.blocklisted").value == 1
    events = control.log.events("worker_blocklist")
    assert len(events) == 1 and events[0].worker == "wBad"
    # no placements on a blocklisted worker
    assert control._view_of("wBad", None) is None
    t = Task("anything")
    control.submit(t)
    control.pump()
    assert t.worker_id == "wOk"
    # and it is avoided (not banned) as a transfer source
    assert control._transfer_gate("fresh", "wBad") == GATE_AVOID


def test_last_worker_is_never_blocklisted():
    port, control = make_control(blocklist_threshold=2, transfer_backoff_base=0.0)
    add_worker(port, control, "wOnly")
    declared(control, "y0", MANAGER_SOURCE, 10)
    control.register_replica("wOnly", "y0", 10, store=True)
    for _ in range(4):
        record = _start_peer_fetch(port, control, "y0", "wOnly", "wGone")
        _fail_transfer(control, record)
    assert "wOnly" not in control.blocklist  # degraded beats empty
    assert control.failure_scores["wOnly"] >= 2


def test_departure_clears_failure_history():
    port, control = make_control(blocklist_threshold=2, transfer_backoff_base=0.0)
    add_worker(port, control, "wBad")
    add_worker(port, control, "wOk")
    _burn_peer(port, control, "z", "wBad", "wOk", 2)
    assert "wBad" in control.blocklist
    port.connected.discard("wBad")
    control.worker_left("wBad")
    assert "wBad" not in control.blocklist
    assert control.failure_scores["wBad"] == 0


def test_success_redeems_failure_score():
    port, control = make_control(transfer_backoff_base=0.0)
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    _burn_peer(port, control, "q", "wA", "wB", 2)
    assert control.failure_scores["wA"] == 2
    declared(control, "good", MANAGER_SOURCE, 10)
    control.register_replica("wA", "good", 10, store=True)
    record = _start_peer_fetch(port, control, "good", "wA", "wB")
    control.on_transfer_complete(record.transfer_id)
    assert control.failure_scores["wA"] == 1


# -- corruption as replica loss ---------------------------------------


def test_corrupt_transfer_discards_source_replica():
    port, control = make_control(transfer_backoff_base=0.0)
    add_worker(port, control, "wSrc")
    add_worker(port, control, "wDst")
    declared(control, "obj", MANAGER_SOURCE, 10)
    control.register_replica("wSrc", "obj", 10, store=True)
    record = _start_peer_fetch(port, control, "obj", "wSrc", "wDst")
    _fail_transfer(control, record, corrupt=True)
    # the source's copy is suspect and dropped, not just the dest's
    assert not control.replicas.has_replica("obj", "wSrc")
    assert ("wSrc", "obj") in port.deleted
    assert control.metrics.counter("transfers.corrupt").value == 1
    deleted = [e for e in control.log.events("file_deleted") if e.category == "corrupt"]
    assert [e.worker for e in deleted] == ["wSrc"]
    # corruption weighs double on the failure score
    assert control.failure_scores["wSrc"] == 2


def test_corrupt_last_temp_replica_feeds_regeneration():
    port, control = make_control(transfer_backoff_base=0.0)
    add_worker(port, control, "wSrc")
    add_worker(port, control, "wDst")
    temp = _temp(control, "mid")
    producer = Task("make").add_output(temp, "out")
    control.submit(producer)
    control.pump()
    finish(port, control, producer)
    src = producer.worker_id
    dst = "wSrc" if src == "wDst" else "wDst"
    consumer = Task("use").add_input(temp, "mid")
    control.submit(consumer)
    # force the intermediate toward the non-holder so a peer transfer
    # carries the only replica
    record = _start_peer_fetch(port, control, "mid", src, dst)
    _fail_transfer(control, record, corrupt=True)
    # the only replica was the corrupt source's: lineage regenerates it
    assert producer.state == TaskState.READY
    assert producer.retries_used == 1
    assert control.log.events("file_regenerated")[0].file == "mid"


# -- deep lineage regeneration ----------------------------------------


def _chain(control, port, depth=3):
    """Build and run a linear chain t0 -> m0 -> t1 -> m1 -> ... on wA."""
    temps, tasks = [], []
    prev = None
    for i in range(depth):
        temp = _temp(control, f"m{i}")
        t = Task(f"stage{i}").add_output(temp, "out")
        if prev is not None:
            t.add_input(prev, "in")
        control.submit(t)
        control.pump()
        finish(port, control, t)
        control.pump()
        temps.append(temp)
        tasks.append(t)
        prev = temp
    return temps, tasks


def test_deep_lineage_regenerates_recursively():
    port, control = make_control()
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    temps, tasks = _chain(control, port, depth=3)
    consumer = Task("use final").add_input(temps[-1], "final")
    control.submit(consumer)
    control.pump()
    # every intermediate lives on the same worker (locality); kill it
    lost = consumer.worker_id
    port.connected.discard(lost)
    control.worker_left(lost)
    # the tail producer is resurrected; its missing input triggers the
    # next producer up, recursively to the head of the chain
    assert all(t.state == TaskState.READY for t in tasks)
    assert all(t.retries_used == 1 for t in tasks)
    regen = [e.file for e in control.log.events("file_regenerated")]
    assert set(regen) == {"m0", "m1", "m2"}
    # now the chain replays on the survivor and the consumer completes
    for t in tasks:
        control.pump()
        assert t.state == TaskState.RUNNING, t.task_id
        finish(port, control, t)
    control.pump()
    assert consumer.state == TaskState.RUNNING
    finish(port, control, consumer)
    assert consumer.state == TaskState.DONE


def test_regeneration_budget_exhausted_fails_consumer_not_loops():
    port, control = make_control(loss_retries=1)
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    temp = _temp(control, "mid")
    producer = Task("make").add_output(temp, "out")
    control.submit(producer)
    control.pump()
    finish(port, control, producer)
    consumer = Task("use").add_input(temp, "mid")
    control.submit(consumer)
    control.pump()
    # first loss: regeneration spends the producer's only retry
    lost = consumer.worker_id
    port.connected.discard(lost)
    control.worker_left(lost)
    assert producer.retries_used == 1
    control.pump()
    finish(port, control, producer)
    control.pump()
    assert consumer.state == TaskState.RUNNING
    # second loss: budget spent — the consumer fails instead of looping
    lost = consumer.worker_id
    port.connected.discard(lost)
    control.worker_left(lost)
    assert producer.state == TaskState.DONE  # not resurrected again
    assert consumer.state == TaskState.FAILED
    assert "mid" in (consumer.result.failure or "") or "lineage" in (
        consumer.result.failure or ""
    ) or "lost" in (consumer.result.failure or "")


def test_regeneration_impossible_without_lineage_fails_waiters():
    port, control = make_control()
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    temp = _temp(control, "orphan")
    # adopt a replica with no producing task recorded (no lineage)
    control.register_replica("wA", "orphan", 10, store=True)
    consumer = Task("use").add_input(temp, "orphan")
    control.submit(consumer)
    control.pump()
    lost = consumer.worker_id
    port.connected.discard(lost)
    control.worker_left(lost)
    # with no producer to rerun, waiting tasks fail loudly
    assert consumer.state == TaskState.FAILED


# -- requeue backoff and fault accounting -----------------------------


def test_requeue_backoff_delays_replacement():
    port, control = make_control(requeue_backoff_base=2.0)
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    t = Task("work")
    control.submit(t)
    control.pump()
    assert t.state == TaskState.RUNNING
    lost = t.worker_id
    port.connected.discard(lost)
    control.worker_left(lost)
    assert t.state == TaskState.READY
    assert t.not_before > port.time
    control.pump()
    assert t.state == TaskState.READY  # held off, not replaced yet
    port.time = t.not_before + 0.01
    control.pump()
    assert t.state == TaskState.RUNNING
    assert control.log.events("task_requeued")[0].category == "worker_lost"
    assert control.metrics.counter("recovery.requeues").value == 1


def test_note_fault_is_logged_and_counted():
    port, control = make_control()
    add_worker(port, control, "wA")
    control.note_fault("wA", "crash")
    control.note_fault("wA", "transfer_corrupt", cache_name="obj")
    events = control.log.events("fault_injected")
    assert [(e.worker, e.category, e.file) for e in events] == [
        ("wA", "crash", None),
        ("wA", "transfer_corrupt", "obj"),
    ]
    assert control.metrics.counter("faults.injected").value == 2
