"""Correctness sweep of the core-table indexes and id generators.

Covers the three bugfix satellites of the scheduler-index PR:

* ``ReplicaTable`` incremental per-worker byte totals must equal a
  from-scratch recount after *any* mutation sequence, and exhausted
  entries (sizes, per-worker name sets) must be pruned rather than
  accumulating forever;
* task and transfer id streams are per-manager/per-table, so two
  managers in one process mint identical sequences (chaos-replay
  determinism) instead of sharing one module-global counter;
* ``Scheduler.order_ready`` no longer parses task ids (the old
  ``int(task_id.lstrip("t"))`` key crashed on foreign ids and
  mis-parsed ``tt12`` as 12).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.replica_table import ReplicaTable
from repro.core.scheduler import Scheduler
from repro.core.task import Task, TaskState
from repro.core.transfer_table import TransferTable
from repro.faults import FaultPlan, SimFaultInjector
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

WORKERS = [f"w{i}" for i in range(4)]
FILES = [f"f{i}" for i in range(5)]


def _recount(table: ReplicaTable) -> dict[str, int]:
    """Ground truth: per-worker byte totals from the raw facts."""
    totals: dict[str, int] = {}
    for name in table.names():
        size = table.size_of(name)
        if not size:
            continue
        for w in table.locate(name):
            totals[w] = totals.get(w, 0) + size
    return totals


replica_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "add_unsized", "remove", "drop_worker", "forget"]),
        st.sampled_from(FILES),
        st.sampled_from(WORKERS),
        st.integers(1, 1000),
    ),
    max_size=40,
)


@settings(max_examples=300, deadline=None)
@given(replica_ops)
def test_replica_byte_index_equals_recount(ops):
    table = ReplicaTable()
    sized: dict[str, int] = {}  # sizes are immutable once learned
    for kind, name, worker, size in ops:
        if kind == "add":
            size = sized.setdefault(name, size)
            table.add_replica(name, worker, size=size)
        elif kind == "add_unsized":
            # size learned later (or never): the index must credit
            # existing holders retroactively when it arrives
            table.add_replica(name, worker)
        elif kind == "remove":
            table.remove_replica(name, worker)
            if not table.locate(name):
                sized.pop(name, None)  # size forgotten with last replica
        elif kind == "drop_worker":
            for gone in table.remove_worker(worker):
                if not table.locate(gone):
                    sized.pop(gone, None)
        else:
            table.forget_name(name)
            sized.pop(name, None)
        expected = _recount(table)
        for w in WORKERS:
            assert table.bytes_at(w) == expected.get(w, 0), (
                f"byte index diverged at {w} after {kind} {name}"
            )


@settings(max_examples=200, deadline=None)
@given(replica_ops)
def test_replica_table_prunes_exhausted_entries(ops):
    """After tearing everything down the table is empty *internally* —
    no orphaned sizes, name sets, or byte totals survive."""
    table = ReplicaTable()
    for kind, name, worker, size in ops:
        if kind in ("add", "add_unsized"):
            try:
                table.add_replica(
                    name, worker, size=size if kind == "add" else None
                )
            except ValueError:
                pass  # size conflict with an earlier op: irrelevant here
        elif kind == "remove":
            table.remove_replica(name, worker)
        elif kind == "drop_worker":
            table.remove_worker(worker)
        else:
            table.forget_name(name)
    for w in WORKERS:
        table.remove_worker(w)
    assert table.total_names() == 0
    assert table.total_replicas() == 0
    assert table._sizes == {}
    assert table._names_by_worker == {}
    assert table._bytes_by_worker == {}
    assert table._workers_by_name == {}


def test_size_pruned_with_last_replica():
    """Regression: sizes used to outlive their replicas forever."""
    table = ReplicaTable()
    table.add_replica("f", "w0", size=77)
    table.add_replica("f", "w1", size=77)
    table.remove_replica("f", "w0")
    assert table.size_of("f") == 77  # one holder left: size retained
    table.remove_replica("f", "w1")
    assert table.size_of("f") == 0
    assert table._sizes == {}
    assert table._names_by_worker == {}  # empty sets pruned too


def test_late_size_credits_existing_holders():
    table = ReplicaTable()
    table.add_replica("f", "w0")
    table.add_replica("f", "w1")
    assert table.bytes_at("w0") == 0
    table.add_replica("f", "w2", size=50)
    assert table.bytes_at("w0") == 50
    assert table.bytes_at("w1") == 50
    assert table.bytes_at("w2") == 50


# -- elastic membership index hygiene -----------------------------------


def _elastic_workload(m, n=8, duration=2.0):
    shared = m.declare_dataset("shared", 1000)
    temps, tasks = [], []
    for i in range(n):
        temp = m.declare_temp()
        t = Task(f"p{i}").add_input(shared, "d").add_output(temp, "out")
        m.submit(t, duration=duration, output_sizes={"out": 1000})
        temps.append(temp)
        tasks.append(t)
    for i in range(n):
        t = (
            Task(f"c{i}")
            .add_input(temps[i], "a")
            .add_input(temps[(i + 3) % n], "b")
        )
        m.submit(t, duration=duration)
        tasks.append(t)
    return tasks


def test_drain_path_leaves_no_stale_worker_state():
    """The worker set is no longer fixed after start: a graceful drain
    must retire *every* per-worker index entry — byte totals, name
    sets, drain bookkeeping, failure accounting — exactly like a crash
    does, with nothing accumulating run over run."""
    c = SimCluster()
    for i in range(3):
        c.add_worker(cores=4, worker_id=f"w{i}")
    m = SimManager(c, seed=5, max_task_retries=5)
    tasks = _elastic_workload(m)
    SimFaultInjector(FaultPlan(seed=5).drain("w0", at=0.5), m)
    m.run()
    assert all(t.state == TaskState.DONE for t in tasks)
    control = m.control
    assert "w0" not in control.workers
    assert control.replicas.bytes_at("w0") == 0
    assert "w0" not in control.replicas._names_by_worker
    assert "w0" not in control.replicas._bytes_by_worker
    assert not control.draining
    assert not control._drain_released
    assert not control._drain_stats
    assert "w0" not in control.blocklist
    assert control.failure_scores["w0"] == 0


def test_drained_worker_id_rejoins_fresh():
    """Id reuse: a worker id that drained away and later rejoins must
    start from a clean slate — not inherit the old life's draining
    flag (which would silently exclude it from placement forever)."""
    c = SimCluster()
    for i in range(3):
        c.add_worker(cores=4, worker_id=f"w{i}")
    m = SimManager(c, seed=5, max_task_retries=5)
    tasks = _elastic_workload(m, n=12)
    plan = FaultPlan(seed=5).drain("w0", at=0.5).join("w0", at=3.0)
    SimFaultInjector(plan, m)
    stats = m.run()
    assert all(t.state == TaskState.DONE for t in tasks)
    joins = [e for e in stats.log.events("worker_join") if e.worker == "w0"]
    assert len(joins) == 2, "the drained id must have rejoined"
    assert "w0" in m.control.workers
    assert "w0" not in m.control.draining
    # the second life was actually schedulable again
    rejoined_at = joins[1].time
    assert any(
        e.kind == "task_start" and e.worker == "w0" and e.time >= rejoined_at
        for e in stats.log.events()
    ), "the rejoined worker never received work"


# -- id generators ------------------------------------------------------


def test_transfer_ids_are_per_table():
    """Regression: the id counter was a module global, so a second
    manager in the same process started at wherever the first left off
    and chaos replays diverged run-to-run."""
    a, b = TransferTable(), TransferTable()
    ra = [a.begin(f"f{i}", "w0", "w1", size=1).transfer_id for i in range(3)]
    rb = [b.begin(f"f{i}", "w0", "w1", size=1).transfer_id for i in range(3)]
    assert ra == rb == ["x1", "x2", "x3"]


def test_task_ids_are_per_manager():
    """Two managers interleaving submissions mint identical id streams."""

    def fresh():
        c = SimCluster()
        c.add_workers(1, cores=4)
        return SimManager(c)

    m1, m2 = fresh(), fresh()
    ids1, ids2 = [], []
    for i in range(4):
        # deliberately interleaved: a shared counter would zip them
        t1, t2 = Task(f"a{i}"), Task(f"b{i}")
        m1.submit(t1, duration=0.1)
        m2.submit(t2, duration=0.1)
        ids1.append(t1.task_id)
        ids2.append(t2.task_id)
    assert ids1 == ids2 == ["t1", "t2", "t3", "t4"]
    m1.run()
    m2.run()


def test_task_identity_assigned_at_submit():
    t = Task("echo hi")
    assert t.task_id is None
    assert t.seq == 0
    c = SimCluster()
    c.add_workers(1)
    m = SimManager(c)
    m.submit(t, duration=0.1)
    assert t.task_id == "t1"
    assert t.seq == 1
    stats = m.run()
    assert stats.tasks_done == 1
    assert t.state == TaskState.DONE


# -- order_ready id robustness ------------------------------------------


def test_order_ready_survives_foreign_task_ids():
    """Regression: ``int(t.task_id.lstrip("t"))`` raised ValueError for
    any id not of the form ``t<N>`` and parsed ``tt12`` as 12."""
    specs = [("job-7", 3), ("tt12", 1), ("θ", 2), ("t5", 4)]
    tasks = []
    for tid, seq in specs:
        t = Task(f"cmd {tid}")
        t.task_id = tid
        t.seq = seq
        tasks.append(t)
    ordered = Scheduler.order_ready(tasks)
    assert [t.task_id for t in ordered] == ["tt12", "θ", "job-7", "t5"]


def test_order_ready_priority_beats_seq():
    a, b = Task("a"), Task("b")
    a.task_id, a.seq, a.priority = "za", 1, 0.0
    b.task_id, b.seq, b.priority = "zb", 2, 1.0
    assert [t.task_id for t in Scheduler.order_ready([a, b])] == ["zb", "za"]
