"""Hypothesis property tests for the scheduling invariants (DESIGN §5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.files import BufferFile
from repro.core.replica_table import ReplicaTable
from repro.core.resources import Resources
from repro.core.scheduler import Scheduler, WorkerView
from repro.core.task import Task
from repro.core.transfer_table import MANAGER_SOURCE, TransferTable

worker_ids = [f"w{i}" for i in range(6)]
file_names = [f"file-{i}" for i in range(8)]


@st.composite
def cluster_state(draw):
    """A random replica layout, in-flight transfer set, and task."""
    replicas = ReplicaTable()
    for name in file_names:
        holders = draw(st.sets(st.sampled_from(worker_ids), max_size=4))
        size = draw(st.integers(1, 10**6))  # one size per file: immutable
        for w in holders:
            replicas.add_replica(name, w, size=size)
    worker_limit = draw(st.one_of(st.none(), st.integers(0, 4)))
    source_limit = draw(st.one_of(st.none(), st.integers(0, 4)))
    transfers = TransferTable(worker_limit=worker_limit, source_limit=source_limit)
    # pre-load some in-flight transfers (unique (file, dest) pairs)
    pairs = draw(
        st.sets(
            st.tuples(st.sampled_from(file_names), st.sampled_from(worker_ids)),
            max_size=6,
        )
    )
    for name, dest in pairs:
        source = draw(st.sampled_from(worker_ids + [MANAGER_SOURCE]))
        transfers.begin(name, source, dest, size=1)
    task = Task("cmd")
    for i, name in enumerate(draw(st.sets(st.sampled_from(file_names), max_size=5))):
        f = BufferFile(b"x")
        f.cache_name = name
        task.inputs.append((f"in{i}", f))
    cores = draw(st.integers(1, 8))
    task.resources = Resources(cores=cores)
    views = {}
    for wid in worker_ids:
        if draw(st.booleans()):
            continue  # worker absent
        allocated = draw(st.integers(0, 8))
        views[wid] = WorkerView(
            worker_id=wid,
            capacity=Resources(cores=8, memory=1000, disk=1000),
            allocated=Resources(cores=allocated),
            running_tasks=allocated,
        )
    return Scheduler(replicas, transfers), task, views


@settings(max_examples=200, deadline=None)
@given(cluster_state())
def test_chosen_worker_always_fits(state):
    sched, task, views = state
    wid = sched.choose_worker(task, views)
    if wid is not None:
        assert views[wid].can_fit(task.resources)
    else:
        # None only when genuinely nothing fits
        assert all(not v.can_fit(task.resources) for v in views.values())


@settings(max_examples=200, deadline=None)
@given(cluster_state())
def test_plan_never_exceeds_source_limits(state):
    sched, task, views = state
    plan = sched.plan_transfers(task, "w0", {})
    per_source = {}
    for _name, source in plan.transfers:
        per_source[source] = per_source.get(source, 0) + 1
    for source, added in per_source.items():
        limit = sched.transfers.limit_for(source)
        if limit is not None and source != "@minitask":
            assert sched.transfers.source_load(source) + added <= limit


@settings(max_examples=200, deadline=None)
@given(cluster_state())
def test_plan_partitions_inputs(state):
    """Every missing input is exactly one of: transferred, pending, deferred."""
    sched, task, views = state
    dest = "w1"
    plan = sched.plan_transfers(task, dest, {})
    planned = {n for n, _ in plan.transfers}
    categories = planned | set(plan.pending) | set(plan.deferred)
    missing = {
        n for n in task.input_cache_names()
        if not sched.replicas.has_replica(n, dest)
    }
    assert categories == missing
    # no overlap between categories
    assert len(planned) + len(plan.pending) + len(plan.deferred) == len(missing)


@settings(max_examples=200, deadline=None)
@given(cluster_state())
def test_plan_never_sources_from_destination(state):
    sched, task, views = state
    plan = sched.plan_transfers(task, "w2", {})
    for _name, source in plan.transfers:
        assert source != "w2"


@settings(max_examples=200, deadline=None)
@given(cluster_state())
def test_peer_always_preferred_over_fixed_source(state):
    """A fixed-source transfer implies no peer replica existed — unless
    peer transfers are disabled outright (worker limit 0)."""
    sched, task, views = state
    plan = sched.plan_transfers(task, "w3", {})
    peers_disabled = sched.transfers.worker_limit == 0
    for name, source in plan.transfers:
        if source == MANAGER_SOURCE and not peers_disabled:
            peers = sched.replicas.locate(name) - {"w3"}
            assert not peers


@settings(max_examples=100, deadline=None)
@given(cluster_state(), st.integers(0, 5))
def test_placement_deterministic(state, _salt):
    """Same state → same decision (scheduling is a pure function)."""
    sched, task, views = state
    assert sched.choose_worker(task, views) == sched.choose_worker(task, views)
    p1 = sched.plan_transfers(task, "w4", {})
    p2 = sched.plan_transfers(task, "w4", {})
    assert p1.transfers == p2.transfers
    assert p1.deferred == p2.deferred
