"""Unit tests for the durable control-plane journal.

Covers the framing layer (length-prefixed records, torn-tail
detection and truncation, atomic compacting snapshots), the domain
layer (fold semantics, redundant-record compaction, replay-cost
accounting), and the file/task serializer round-trips.
"""

import json
import os
import struct

import pytest

from repro.core.control_plane import MINITASK_SOURCE, NO_SOURCE
from repro.core.files import BufferFile, CacheLevel, FileRegistry, TempFile, URLFile
from repro.core.journal import (
    MAX_INLINE_BYTES,
    ControlPlaneJournal,
    Journal,
    build_task,
    file_spec,
    restore_file,
    task_spec,
)
from repro.core.task import Task

_LEN = struct.Struct(">I")


# ----------------------------------------------------------------------
# Journal: framing
# ----------------------------------------------------------------------


def test_journal_append_replay_round_trip(tmp_path):
    j = Journal(str(tmp_path))
    for i in range(5):
        j.append({"op": "x", "i": i})
    j.close()

    records, stats = Journal(str(tmp_path)).replay()
    assert [r["i"] for r in records] == [0, 1, 2, 3, 4]
    assert stats.tail_records == 5
    assert stats.snapshot_records == 0
    assert stats.lifetime_records == 5
    assert stats.torn_bytes == 0


@pytest.mark.parametrize("cut", [1, 3])
def test_torn_trailing_record_is_detected_and_truncated(tmp_path, cut):
    """A crash mid-append tears only the last record; replay reports it
    and the next append writes over it."""
    j = Journal(str(tmp_path))
    j.append({"op": "keep", "i": 0})
    j.append({"op": "keep", "i": 1})
    j.append({"op": "doomed"})
    j.close()

    # tear `cut` bytes into the final record (prefix or payload)
    log = tmp_path / Journal.LOG_NAME
    data = log.read_bytes()
    torn_len = _LEN.size + len(json.dumps({"op": "doomed"}, separators=(",", ":")))
    log.write_bytes(data[: len(data) - torn_len + cut])

    j2 = Journal(str(tmp_path))
    records, stats = j2.replay()
    assert [r.get("i") for r in records] == [0, 1]
    assert stats.torn_bytes == cut
    # appending truncates the torn bytes so later replays stay aligned
    j2.append({"op": "keep", "i": 2})
    j2.close()
    records, stats = Journal(str(tmp_path)).replay()
    assert [r["i"] for r in records] == [0, 1, 2]
    assert stats.torn_bytes == 0


def test_framed_garbage_stops_replay_at_the_tear(tmp_path):
    """An intact length prefix over non-JSON bytes is still a tear:
    nothing after it can be trusted to be aligned."""
    j = Journal(str(tmp_path))
    j.append({"op": "keep"})
    j.close()
    log = tmp_path / Journal.LOG_NAME
    garbage = b"\x00not json"
    with open(log, "ab") as fh:
        fh.write(_LEN.pack(len(garbage)) + garbage)
    records, stats = Journal(str(tmp_path)).replay()
    assert len(records) == 1
    assert stats.torn_bytes == _LEN.size + len(garbage)


def test_compaction_bounds_replay_cost(tmp_path):
    j = Journal(str(tmp_path))
    for i in range(10):
        j.append({"op": "x", "i": i})
    # compact to a 2-record equivalent snapshot; the tail resets
    j.compact([{"op": "x", "i": "a"}, {"op": "x", "i": "b"}])
    j.append({"op": "x", "i": "tail"})
    j.close()

    records, stats = Journal(str(tmp_path)).replay()
    assert [r["i"] for r in records] == ["a", "b", "tail"]
    assert stats.snapshot_records == 2
    assert stats.tail_records == 1
    # lifetime counts every append ever made, not just what replayed
    assert stats.lifetime_records == 11
    assert stats.replayed_records < stats.lifetime_records


def test_corrupt_snapshot_falls_back_to_the_log(tmp_path):
    j = Journal(str(tmp_path))
    j.append({"op": "x", "i": 0})
    j.compact([{"op": "x", "i": 0}])
    j.append({"op": "x", "i": 1})
    j.close()
    (tmp_path / Journal.SNAPSHOT_NAME).write_text("{ not json")
    records, stats = Journal(str(tmp_path)).replay()
    # snapshot contents are gone, but the tail still replays
    assert [r["i"] for r in records] == [1]
    assert stats.snapshot_records == 0


# ----------------------------------------------------------------------
# ControlPlaneJournal: fold semantics and compaction
# ----------------------------------------------------------------------


def test_domain_fold_round_trip(tmp_path):
    cj = ControlPlaneJournal(str(tmp_path))
    assert not cj.recovered
    cj.record_meta(port=4711, project="p")
    cj.record_declare({"name": "f1", "kind": "buffer", "size": 3})
    cj.record_declare({"name": "f1", "kind": "buffer", "size": 3})  # dedup
    cj.record_quota("alice", 10, None)
    cj.record_quota("alice", 20, None)  # supersedes
    cj.record_tenant_bytes("alice", 100)
    cj.record_tenant_bytes("alice", 50)
    cj.record_session("tok-a", "C3", "alice")
    cj.record_session("tok-b", "C7", "bob")
    cj.record_session_closed("tok-b")
    cj.record_submit("t1", 1, "alice", {"command": "true"}, "tok-a")
    cj.record_submit("t2", 2, "alice", {"command": "false"}, None)
    cj.record_done("t1", ["out1"])
    cj.record_replica("w0", "out1", 7)
    cj.record_replica("w1", "out1", 7)
    cj.record_replica_gone("w0", "out1")
    cj.close()

    back = ControlPlaneJournal(str(tmp_path))
    assert back.recovered
    assert back.meta["port"] == 4711
    assert set(back.declares) == {"f1"}
    assert back.quotas["alice"]["tasks"] == 20
    assert back.tenant_bytes["alice"] == 150
    assert set(back.sessions) == {"tok-a"}
    assert back.max_session_id == 7  # closed sessions still reserve ids
    assert back.max_seq == 2
    assert [r["id"] for r in back.pending_tasks()] == ["t2"]
    assert [r["id"] for r in back.done_tasks()] == ["t1"]
    assert back.done_tasks()[0]["outputs_done"] == ["out1"]
    assert back.replica_hints["out1"] == {"w1": 7}
    assert back.known_workers() == {"w1"}
    back.close()


def test_domain_compaction_drops_redundant_records(tmp_path):
    """Per-grant replica records and incremental byte charges collapse:
    after compaction, replay reads back fewer records than were ever
    appended — the acceptance bound for restart cost."""
    cj = ControlPlaneJournal(str(tmp_path), snapshot_every=8)
    # 3 tenant-byte increments + 4 replica grants for one object that
    # moved around collapse to 1 total + 1 latest-location record
    for _ in range(3):
        cj.record_tenant_bytes("alice", 10)
    for w in ("w0", "w1", "w2"):
        cj.record_replica(w, "obj", 5)
        cj.record_replica_gone(w, "obj")
    cj.record_replica("w3", "obj", 5)
    cj.record_declare({"name": "obj", "kind": "temp", "size": 5})
    # 11 appends >= snapshot_every=8: an automatic compaction ran
    assert os.path.exists(os.path.join(str(tmp_path), Journal.SNAPSHOT_NAME))
    cj.close()

    back = ControlPlaneJournal(str(tmp_path))
    stats = back.last_replay_stats
    assert stats.replayed_records < stats.lifetime_records
    assert back.tenant_bytes["alice"] == 30
    assert back.replica_hints["obj"] == {"w3": 5}
    back.close()


def test_auto_compaction_notifies_on_compact(tmp_path):
    cj = ControlPlaneJournal(str(tmp_path), snapshot_every=8)
    compactions = []
    cj.on_compact = compactions.append
    for i in range(9):
        cj.record_tenant_bytes("t", 1)
    assert compactions  # fired with the lifetime record count
    assert compactions[0] >= 8
    cj.close()


def test_unknown_ops_are_skipped_not_fatal(tmp_path):
    j = Journal(str(tmp_path))
    j.append({"op": "from_the_future", "x": 1})
    j.append({"op": "declare", "name": "f", "kind": "temp", "size": 0})
    j.close()
    back = ControlPlaneJournal(str(tmp_path))
    assert set(back.declares) == {"f"}
    back.close()


# ----------------------------------------------------------------------
# serializers
# ----------------------------------------------------------------------


def test_buffer_file_spec_round_trip_retains_bytes():
    f = BufferFile(b"payload", CacheLevel.WORKFLOW)
    f.cache_name = "buffer-x"
    spec = file_spec(f, source="@manager", size=7, tenant="alice")
    back, source, size = restore_file(spec)
    assert isinstance(back, BufferFile)
    assert back.data == b"payload"
    assert back.cache_name == "buffer-x"
    assert (source, size) == ("@manager", 7)
    assert spec["tenant"] == "alice"


def test_oversized_buffer_restores_without_a_source():
    f = BufferFile(b"x", CacheLevel.WORKFLOW)
    f.cache_name = "buffer-big"
    spec = file_spec(f, source="@manager", size=1)
    del spec["data"]  # as if the payload exceeded MAX_INLINE_BYTES
    spec["size"] = MAX_INLINE_BYTES + 1
    back, source, _size = restore_file(spec)
    # bytes not retained: only a live replica can back this name now
    assert source == NO_SOURCE


def test_minitask_sourced_file_restores_without_a_source():
    f = URLFile("http://example.com/d", CacheLevel.WORKFLOW)
    f.cache_name = "url-d"
    spec = file_spec(f, source="@manager", size=4)
    spec["kind"] = "file"
    spec["source"] = MINITASK_SOURCE
    _back, source, _size = restore_file(spec)
    assert source == NO_SOURCE


def test_temp_file_spec_keeps_producer_lineage():
    f = TempFile(CacheLevel.WORKER)
    f.cache_name = "temp-z"
    f.producer_task_id = "t42"
    spec = file_spec(f, source="w0", size=9)
    back, source, _ = restore_file(spec)
    assert isinstance(back, TempFile)
    assert back.producer_task_id == "t42"
    assert source == "w0"  # sim node names round-trip verbatim


def test_task_spec_round_trip(tmp_path):
    registry = FileRegistry()
    fin = BufferFile(b"in", CacheLevel.WORKFLOW)
    fin.cache_name = "buffer-in"
    fout = TempFile(CacheLevel.WORKFLOW)
    fout.cache_name = "temp-out"
    registry.register(fin)
    registry.register(fout)

    t = Task("cat in.txt > out.txt")
    t.category = "heavy"
    t.deterministic = True
    t.max_retries = 3
    t.env = {"K": "V"}
    t.add_input(fin, "in.txt")
    t.add_output(fout, "out.txt")
    t.sim_duration = 2.5
    t.sim_output_sizes = {"out.txt": 11}

    back = build_task(task_spec(t), registry)
    assert back is not None
    assert back.command == t.command
    assert back.category == "heavy"
    assert back.deterministic is True
    assert back.max_retries == 3
    assert back.env == {"K": "V"}
    assert [(sb, f.cache_name) for sb, f in back.inputs] == [("in.txt", "buffer-in")]
    assert [(sb, f.cache_name) for sb, f in back.outputs] == [("out.txt", "temp-out")]
    assert back.sim_duration == 2.5
    assert back.sim_output_sizes == {"out.txt": 11}


def test_task_referencing_unknown_file_is_not_restorable():
    t = Task("true")
    f = TempFile(CacheLevel.WORKFLOW)
    f.cache_name = "temp-gone"
    t.add_input(f, "in.txt")
    assert build_task(task_spec(t), FileRegistry()) is None


def test_serverless_call_is_not_restorable():
    assert build_task({"kind": "call", "command": ""}, FileRegistry()) is None
