"""Tests for the placement and transfer-source policies (paper §3.3)."""

from repro.core.files import BufferFile
from repro.core.replica_table import ReplicaTable
from repro.core.resources import Resources
from repro.core.scheduler import Scheduler, WorkerView
from repro.core.task import Task
from repro.core.transfer_table import MANAGER_SOURCE, TransferTable


def make_sched(worker_limit=3, source_limit=100, locality=True):
    rt = ReplicaTable()
    tt = TransferTable(worker_limit=worker_limit, source_limit=source_limit)
    return Scheduler(rt, tt, locality=locality), rt, tt


def worker(wid, cores=4, running=0):
    return WorkerView(
        worker_id=wid,
        capacity=Resources(cores=cores, memory=1000, disk=1000),
        allocated=Resources(cores=0),
        running_tasks=running,
    )


def named_buffer(data: bytes, name: str) -> BufferFile:
    f = BufferFile(data)
    f.cache_name = name
    return f


def task_with_inputs(*names):
    t = Task("cmd")
    for i, name in enumerate(names):
        t.add_input(named_buffer(b"x", name), f"in{i}")
    return t


# -- placement ---------------------------------------------------------


def test_placement_prefers_most_cached_bytes():
    sched, rt, _ = make_sched()
    rt.add_replica("big", "w2", size=1000)
    rt.add_replica("small", "w1", size=10)
    workers = {w.worker_id: w for w in [worker("w1"), worker("w2"), worker("w3")]}
    t = task_with_inputs("big", "small")
    assert sched.choose_worker(t, workers) == "w2"


def test_placement_skips_workers_without_capacity():
    sched, rt, _ = make_sched()
    rt.add_replica("big", "w1", size=1000)
    w1 = worker("w1")
    w1.allocated = Resources(cores=4)  # full
    workers = {"w1": w1, "w2": worker("w2")}
    t = task_with_inputs("big")
    assert sched.choose_worker(t, workers) == "w2"


def test_placement_returns_none_when_nothing_fits():
    sched, _, _ = make_sched()
    t = task_with_inputs()
    t.set_resources(Resources(cores=64))
    assert sched.choose_worker(t, {"w1": worker("w1", cores=4)}) is None


def test_placement_skips_draining_workers():
    sched, rt, _ = make_sched()
    rt.add_replica("f", "w1", size=100)
    w1 = worker("w1")
    w1.draining = True
    workers = {"w1": w1, "w2": worker("w2")}
    assert sched.choose_worker(task_with_inputs("f"), workers) == "w2"


def test_placement_tie_breaks_by_load_then_id():
    sched, _, _ = make_sched()
    workers = {
        "w2": worker("w2", running=1),
        "w1": worker("w1", running=0),
        "w3": worker("w3", running=0),
    }
    assert sched.choose_worker(task_with_inputs(), workers) == "w1"


def test_locality_disabled_ignores_replicas():
    sched, rt, _ = make_sched(locality=False)
    rt.add_replica("big", "w2", size=10**9)
    workers = {"w1": worker("w1", running=0), "w2": worker("w2", running=1)}
    assert sched.choose_worker(task_with_inputs("big"), workers) == "w1"


# -- transfer planning ---------------------------------------------------


def test_plan_skips_files_already_present():
    sched, rt, _ = make_sched()
    rt.add_replica("f1", "wdest", size=10)
    plan = sched.plan_transfers(task_with_inputs("f1"), "wdest", {})
    assert plan.transfers == [] and plan.satisfied


def test_plan_prefers_peer_over_fixed_source():
    sched, rt, _ = make_sched()
    rt.add_replica("f1", "wsrc", size=10)
    plan = sched.plan_transfers(
        task_with_inputs("f1"), "wdest", {"f1": MANAGER_SOURCE}
    )
    assert plan.transfers == [("f1", "wsrc")]


def test_plan_falls_back_to_fixed_source():
    sched, _, _ = make_sched()
    plan = sched.plan_transfers(
        task_with_inputs("f1"), "wdest", {"f1": "url:host"}
    )
    assert plan.transfers == [("f1", "url:host")]


def test_plan_defaults_fixed_source_to_manager():
    sched, _, _ = make_sched()
    plan = sched.plan_transfers(task_with_inputs("f1"), "wdest", {})
    assert plan.transfers == [("f1", MANAGER_SOURCE)]


def test_plan_respects_peer_limit_and_defers():
    sched, rt, tt = make_sched(worker_limit=1, source_limit=0)
    rt.add_replica("f1", "wsrc", size=10)
    tt.begin("other", "wsrc", "welse", size=1)  # saturate the only peer
    plan = sched.plan_transfers(task_with_inputs("f1"), "wdest", {"f1": MANAGER_SOURCE})
    assert plan.deferred == ["f1"] and not plan.satisfied


def test_plan_reserves_slots_within_one_round():
    # one source holding two needed files, limit 1: only one scheduled now
    sched, rt, _ = make_sched(worker_limit=1, source_limit=0)
    rt.add_replica("f1", "wsrc", size=10)
    rt.add_replica("f2", "wsrc", size=10)
    plan = sched.plan_transfers(task_with_inputs("f1", "f2"), "wdest", {})
    assert len(plan.transfers) == 1
    assert len(plan.deferred) == 1


def test_plan_reports_pending_in_flight():
    sched, _, tt = make_sched()
    tt.begin("f1", MANAGER_SOURCE, "wdest", size=1)
    plan = sched.plan_transfers(task_with_inputs("f1"), "wdest", {})
    assert plan.pending == ["f1"]
    assert plan.transfers == [] and plan.satisfied


def test_plan_picks_least_loaded_peer():
    sched, rt, tt = make_sched(worker_limit=5)
    rt.add_replica("f1", "wa", size=10)
    rt.add_replica("f1", "wb", size=10)
    tt.begin("other", "wa", "wx", size=1)
    plan = sched.plan_transfers(task_with_inputs("f1"), "wdest", {})
    assert plan.transfers == [("f1", "wb")]


def test_plan_never_uses_dest_as_its_own_source():
    sched, rt, _ = make_sched()
    rt.add_replica("f1", "wdest", size=10)
    rt.remove_replica("f1", "wdest")
    rt.add_replica("f1", "wonly", size=10)
    plan = sched.plan_transfers(task_with_inputs("f1"), "wonly", {})
    assert plan.transfers == []  # already present at wonly


def test_minitask_pseudo_source_always_available():
    sched, _, tt = make_sched(worker_limit=0, source_limit=0)
    plan = sched.plan_transfers(
        task_with_inputs("f1"), "wdest", {"f1": "@minitask"}
    )
    assert plan.transfers == [("f1", "@minitask")]


def test_order_ready_priority_then_fifo():
    t1 = Task("a")
    t2 = Task("b").set_priority(5)
    t3 = Task("c")
    ordered = Scheduler.order_ready([t1, t2, t3])
    assert ordered == [t2, t1, t3]
