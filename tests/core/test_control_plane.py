"""Unit tests for the shared control plane against a scripted fake port.

The :class:`FakePort` records every effect the control plane requests
(transfers, executions, staging, deletions) without moving any bytes,
so each policy behaviour — placement, per-source limits, mini-task
staging, regeneration, replication, retries, garbage collection — can
be driven step by step and observed directly.
"""

import pytest

from repro.core.control_plane import (
    MINITASK_SOURCE,
    NO_SOURCE,
    ControlPlane,
    source_kind,
)
from repro.core.files import CacheLevel, File, MiniTaskFile, TempFile
from repro.core.resources import ResourcePool, Resources
from repro.core.task import MiniTask, Task, TaskResult, TaskState
from repro.core.transfer_table import MANAGER_SOURCE


class FakePort:
    """Records control-plane effects; advances time only when told."""

    def __init__(self):
        self.time = 0.0
        self.connected = set()
        self.pushes = []       # Transfer records for manager-sourced sends
        self.fetches = []      # Transfer records for url/peer fetches
        self.minitasks = []    # StagingJob
        self.started = []      # Task
        self.cancelled = []    # Task
        self.preempted = []    # Task
        self.launched = []     # (lib name, worker_id)
        self.stored = []       # (worker_id, cache_name, size)
        self.deleted = []      # (worker_id, cache_name)
        self.delivered = []    # (task, regenerated)

    def now(self):
        return self.time

    def worker_connected(self, worker_id):
        return worker_id in self.connected

    def push_object(self, record, level):
        self.pushes.append(record)

    def send_fetch(self, record, level):
        self.fetches.append(record)

    def run_minitask(self, job):
        self.minitasks.append(job)

    def start_task(self, task):
        self.started.append(task)

    def cancel_task(self, task):
        self.cancelled.append(task)

    def task_preempted(self, task):
        self.preempted.append(task)

    def launch_library(self, lib, worker_id):
        self.launched.append((lib.name, worker_id))

    def store_replica(self, worker_id, cache_name, size, level):
        self.stored.append((worker_id, cache_name, size))

    def delete_replica(self, worker_id, cache_name):
        self.deleted.append((worker_id, cache_name))

    def deliver(self, task, regenerated):
        self.delivered.append((task, regenerated))

    def request_pump(self):
        pass  # tests call control.pump() explicitly for determinism


def make_control(**kwargs):
    port = FakePort()
    control = ControlPlane(port, **kwargs)
    return port, control


def add_worker(port, control, wid, cores=4, memory=1000):
    port.connected.add(wid)
    return control.worker_joined(
        wid, ResourcePool(Resources(cores=cores, memory=memory))
    )


def declared(control, name, source=MANAGER_SOURCE, size=100, cache=CacheLevel.WORKFLOW):
    f = File(cache)
    f.cache_name = name
    control.declare(f, source, size)
    return f


def finish(port, control, task, exit_code=0, register_outputs=True, **result_kw):
    """Drive one task through result + output registration + completion."""
    wid = task.worker_id
    result = TaskResult(exit_code=exit_code, **result_kw)
    got = control.on_task_result(wid, task.task_id, result)
    if got is None:
        return None
    if register_outputs:
        for _, f in task.outputs:
            control.register_replica(wid, f.cache_name, 10, store=True)
    control.complete_task(got, result)
    return got


def test_dispatch_places_and_pushes_manager_input():
    port, control = make_control()
    add_worker(port, control, "wA")
    f = declared(control, "data", MANAGER_SOURCE, 100)
    t = Task("cat data")
    t.add_input(f, "data")
    control.submit(t)
    control.pump()
    assert t.state == TaskState.DISPATCHED
    assert t.worker_id == "wA"
    assert [r.cache_name for r in port.pushes] == ["data"]
    # the transfer lands: replica registers and the task starts
    control.on_cache_update("wA", "data", 100, port.pushes[0].transfer_id)
    control.pump()
    assert t.state == TaskState.RUNNING
    assert port.started == [t]
    finish(port, control, t)
    assert t.state == TaskState.DONE
    assert control.transfer_counts["manager"] == 1


def test_placement_prefers_worker_with_cached_bytes():
    port, control = make_control()
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    f = declared(control, "big", MANAGER_SOURCE, 10_000)
    control.register_replica("wB", "big", 10_000)
    t = Task("use big")
    t.add_input(f, "big")
    control.submit(t)
    control.pump()
    assert t.worker_id == "wB"
    assert port.pushes == []  # input already local: no transfer at all


def test_per_source_limit_defers_excess_transfers():
    port, control = make_control(source_transfer_limit=2)
    for wid in ("w1", "w2", "w3"):
        add_worker(port, control, wid)
    f = declared(control, "shared", MANAGER_SOURCE, 100)
    tasks = []
    for i in range(3):
        t = Task(f"use {i}")
        t.add_input(f, "shared")
        control.submit(t)
        tasks.append(t)
    control.pump()
    # three tasks on three workers, but the manager only serves 2 at once
    assert len(port.pushes) == 2
    first = port.pushes[0]
    control.on_cache_update(first.dest_worker, "shared", 100, first.transfer_id)
    control.pump()
    # a slot freed: the third transfer starts (from the manager or a peer)
    assert len(port.pushes) + len(port.fetches) == 3


def test_peer_source_preferred_over_manager():
    port, control = make_control()
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    f = declared(control, "warm", MANAGER_SOURCE, 100)
    control.register_replica("wA", "warm", 100)
    t = Task("use warm")
    t.set_cores(5)  # cannot fit anywhere but wB after wA... force wB
    t.resources = Resources(cores=1)
    t.add_input(f, "warm")
    # occupy wA completely so placement must pick wB
    blocker = Task("sleep")
    blocker.set_cores(4)
    control.submit(blocker)
    control.pump()
    assert blocker.worker_id == "wA" or blocker.worker_id == "wB"
    other = "wB" if blocker.worker_id == "wA" else "wA"
    control.register_replica(blocker.worker_id, "warm", 100)
    control.submit(t)
    control.pump()
    assert t.worker_id == other
    assert len(port.fetches) == 1
    assert source_kind(port.fetches[0].source) == "peer"


def test_minitask_staging_waits_for_dependency_then_runs():
    port, control = make_control()
    add_worker(port, control, "wA")
    tarball = declared(control, "tarball", MANAGER_SOURCE, 500)
    mini = MiniTask("tar -xf input.tar").set_output_name("unpacked")
    mini.add_input(tarball, "input.tar")
    mf = MiniTaskFile(mini)
    mf.cache_name = "unpacked-object"
    control.declare(mf, MINITASK_SOURCE, 0)
    t = Task("use unpacked")
    t.add_input(mf, "unpacked")
    control.submit(t)
    control.pump()
    # the mini task cannot run yet: its own input is still in flight
    assert port.minitasks == []
    assert [r.cache_name for r in port.pushes] == ["tarball"]
    control.on_cache_update("wA", "tarball", 500, port.pushes[0].transfer_id)
    control.pump()
    assert [j.file.cache_name for j in port.minitasks] == ["unpacked-object"]
    job = port.minitasks[0]
    control.on_stage_done(job)
    control.pump()
    assert t.state == TaskState.RUNNING
    assert control.transfer_counts["stage"] == 1


def test_temp_output_gc_after_last_consumer():
    port, control = make_control()
    add_worker(port, control, "wA")
    # TASK-level files are collected as soon as their refcount drains;
    # WORKFLOW-level ones wait for workflow close
    temp = TempFile(CacheLevel.TASK)
    temp.cache_name = "intermediate"
    control.declare(temp, NO_SOURCE, 0)
    producer = Task("make").add_output(temp, "out")
    consumer = Task("use").add_input(temp, "out")
    control.submit(producer)
    control.submit(consumer)
    control.pump()
    finish(port, control, producer)
    control.pump()
    assert consumer.state == TaskState.RUNNING
    finish(port, control, consumer)
    # last reference dropped: the replica is collected from the worker
    assert ("wA", "intermediate") in port.deleted
    assert control.replicas.replica_count("intermediate") == 0


def test_worker_loss_requeues_and_regenerates_lineage():
    port, control = make_control()
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    temp = TempFile()
    temp.cache_name = "mid"
    control.declare(temp, NO_SOURCE, 0)
    producer = Task("make").add_output(temp, "out")
    consumer = Task("use").add_input(temp, "out")
    control.submit(producer)
    control.pump()
    finish(port, control, producer)
    control.pump()
    control.submit(consumer)
    control.pump()
    assert consumer.state == TaskState.RUNNING
    # locality put the consumer where the only replica of "mid" lives;
    # that worker dies mid-run, taking the replica and the consumer
    lost = consumer.worker_id
    assert lost == producer.worker_id
    port.connected.discard(lost)
    control.worker_left(lost)
    # the consumer is requeued and the producer resurrected to
    # regenerate the lost intermediate
    assert consumer.state == TaskState.READY
    assert producer.state == TaskState.READY
    assert producer.retries_used == 1
    assert control.tasks_requeued >= 1
    control.pump()
    assert producer.state == TaskState.RUNNING
    assert producer.worker_id == "wB"
    finish(port, control, producer)
    control.pump()
    assert consumer.state == TaskState.RUNNING
    finish(port, control, consumer)
    assert consumer.state == TaskState.DONE
    # the rerun is flagged as a regeneration so the adapter can
    # suppress re-delivery to the application
    assert [
        r for t, r in port.delivered if t.task_id == producer.task_id
    ] == [False, True]


def test_consumer_submitted_after_loss_regenerates_lineage():
    # the temp's last replica dies while NOTHING references it; a
    # consumer submitted afterwards must still trigger regeneration
    # (worker_left cannot have seen the need — the pump recovers it)
    port, control = make_control()
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    temp = TempFile()
    temp.cache_name = "mid"
    control.declare(temp, NO_SOURCE, 0)
    producer = Task("make").add_output(temp, "out")
    control.submit(producer)
    control.pump()
    finish(port, control, producer)
    lost = producer.worker_id
    port.connected.discard(lost)
    control.worker_left(lost)
    assert control.replicas.replica_count("mid") == 0
    assert producer.state == TaskState.DONE  # nothing needed mid yet
    consumer = Task("use").add_input(temp, "out")
    control.submit(consumer)
    control.pump()
    assert producer.state == TaskState.RUNNING  # resurrected by the pump
    finish(port, control, producer)
    control.pump()
    assert consumer.state == TaskState.RUNNING
    finish(port, control, consumer)
    assert consumer.state == TaskState.DONE


def test_strict_loss_raises_when_budget_spent():
    port, control = make_control(loss_retries=0, strict_loss=True)
    add_worker(port, control, "wA")
    t = Task("fragile")
    control.submit(t)
    control.pump()
    assert t.state == TaskState.RUNNING
    port.connected.discard("wA")
    with pytest.raises(RuntimeError, match="lost 1 workers"):
        control.worker_left("wA")


def test_replication_tops_up_temp_replicas():
    port, control = make_control(temp_replica_count=2)
    add_worker(port, control, "wA")
    add_worker(port, control, "wB")
    temp = TempFile()
    temp.cache_name = "precious"
    control.declare(temp, NO_SOURCE, 0)
    producer = Task("make").add_output(temp, "out")
    consumer = Task("use").add_input(temp, "out")  # keeps refs alive
    control.submit(producer)
    control.submit(consumer)
    control.pump()
    finish(port, control, producer)
    # a replication transfer to the second worker was planned
    assert len(port.fetches) == 1
    rec = port.fetches[0]
    assert rec.cache_name == "precious"
    assert {rec.source, rec.dest_worker} == {"wA", "wB"}


def test_resource_exceeded_retry_grows_allocation():
    port, control = make_control()
    add_worker(port, control, "wA", cores=8)
    t = Task("hog")
    t.set_resources(Resources(cores=1, memory=100))
    control.submit(t)
    control.pump()
    assert t.state == TaskState.RUNNING
    got = control.on_task_result(
        "wA", t.task_id, TaskResult(exit_code=137, exceeded=["memory"])
    )
    assert got is None  # requeued, not completed
    assert t.state == TaskState.READY
    assert t.resources.memory == 200  # default growth factor 2.0
    control.pump()
    assert t.state == TaskState.RUNNING


def test_sandbox_failure_retries_without_growth():
    port, control = make_control()
    add_worker(port, control, "wA")
    t = Task("flaky")
    control.submit(t)
    control.pump()
    got = control.on_task_result(
        "wA", t.task_id, TaskResult(exit_code=126, failure="sandbox")
    )
    assert got is None
    assert t.state == TaskState.READY
    assert t.retries_used == 1


def test_transfer_failure_exhaustion_fails_waiting_tasks():
    port, control = make_control(transfer_retries=1)
    add_worker(port, control, "wA")
    f = declared(control, "cursed", "url:dead.example", 100)
    t = Task("use cursed")
    t.add_input(f, "cursed")
    control.submit(t)
    control.pump()
    assert len(port.fetches) == 1
    control.on_cache_invalid("wA", "cursed", port.fetches[0].transfer_id)
    control.pump()
    assert len(port.fetches) == 1  # retry is held off by the backoff
    port.time += control.transfer_backoff_max  # past any jittered delay
    control.pump()
    assert len(port.fetches) == 2  # one retry allowed
    control.on_cache_invalid("wA", "cursed", port.fetches[1].transfer_id)
    assert t.state == TaskState.FAILED
    assert "cursed" in (t.result.failure or "")


def test_cancel_running_task_reaches_worker():
    port, control = make_control()
    add_worker(port, control, "wA")
    t = Task("long")
    control.submit(t)
    control.pump()
    assert t.state == TaskState.RUNNING
    assert control.cancel(t) is True
    assert port.cancelled == [t]
    assert t.state == TaskState.CANCELLED
    assert control.cancel(t) is False
    assert control.outstanding == 0


def test_library_deploy_retries_when_capacity_frees():
    port, control = make_control()
    from repro.core.control_plane import LibraryState

    add_worker(port, control, "wA", cores=1)
    blocker = Task("sleep")
    control.submit(blocker)
    control.pump()
    assert blocker.state == TaskState.RUNNING
    control.libraries["lib"] = LibraryState("lib", resources=Resources(cores=1))
    control.install_library("lib")
    # no room while the blocker runs
    assert port.launched == []
    finish(port, control, blocker)
    control.pump()
    assert port.launched == [("lib", "wA")]
    control.on_library_ready("wA", "lib")
    assert control.libraries["lib"].state["wA"] == "ready"
