"""The declarative fault plan: validation, determinism, serialization."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import (
    FaultPlan,
    LinkDegrade,
    ManagerCrash,
    TransferFault,
    WorkerCrash,
    WorkerDrain,
    WorkerJoin,
)
from repro.faults.real import WorkerFaultConfig, join_schedule, worker_fault_configs


# -- validation --------------------------------------------------------


def test_crash_needs_exactly_one_trigger():
    with pytest.raises(ValueError):
        WorkerCrash("w0")
    with pytest.raises(ValueError):
        WorkerCrash("w0", at=1.0, after_tasks=2)
    with pytest.raises(ValueError):
        WorkerCrash("w0", after_tasks=0)
    WorkerCrash("w0", at=1.0)
    WorkerCrash("w0", after_tasks=1)


def test_manager_crash_needs_exactly_one_trigger():
    with pytest.raises(ValueError):
        ManagerCrash()
    with pytest.raises(ValueError):
        ManagerCrash(at=1.0, after_tasks=2)
    with pytest.raises(ValueError):
        ManagerCrash(after_tasks=0)
    ManagerCrash(at=1.0)
    ManagerCrash(after_tasks=1)


def test_transfer_fault_validates_kind_p_mode():
    with pytest.raises(ValueError):
        TransferFault("disk", 0.1)
    with pytest.raises(ValueError):
        TransferFault("peer", 1.5)
    with pytest.raises(ValueError):
        TransferFault("peer", 0.1, mode="explode")
    assert TransferFault("any", 0.1).matches("peer")
    assert TransferFault("peer", 0.1).matches("peer")
    assert not TransferFault("peer", 0.1).matches("manager")


def test_membership_specs_validate():
    with pytest.raises(ValueError):
        WorkerJoin("w9", at=-1.0)
    with pytest.raises(ValueError):
        WorkerJoin("w9", at=1.0, cores=0)
    with pytest.raises(ValueError):
        WorkerDrain("w0", at=-0.5)
    WorkerJoin("w9", at=0.0)
    WorkerDrain("w0", at=0.0)


def test_degrade_factor_bounds():
    with pytest.raises(ValueError):
        LinkDegrade("w0", at=1.0, factor=0.0)
    with pytest.raises(ValueError):
        LinkDegrade("w0", at=1.0, factor=1.1)
    LinkDegrade("w0", at=1.0, factor=1.0)


# -- deterministic randomness ------------------------------------------


def test_rng_scopes_are_independent_and_seeded():
    plan = FaultPlan(seed=7)
    a1 = [plan.rng_for("alpha").random() for _ in range(3)]
    a2 = [plan.rng_for("alpha").random() for _ in range(3)]
    b = [plan.rng_for("beta").random() for _ in range(3)]
    assert a1 == a2  # same seed + scope replays the stream
    assert a1 != b  # different scopes never share a stream
    assert a1 != [FaultPlan(seed=8).rng_for("alpha").random() for _ in range(3)]


def test_transfer_verdict_draws_once_per_matching_rule():
    plan = (
        FaultPlan(seed=1)
        .corrupt_transfers("peer", 0.0)  # matches but never fires
        .fail_transfers("any", 1.0)  # always fires when reached
    )
    rng = plan.rng_for("t")
    # peer transfers consume two draws (both rules match), manager ones
    # a single draw; either way the certain rule fires
    assert plan.transfer_verdict(rng, "peer") == "fail"
    assert plan.transfer_verdict(rng, "manager") == "fail"
    # rules are consulted in declaration order: a certain corrupt rule
    # declared first shadows the fail rule
    shadowing = (
        FaultPlan(seed=1).corrupt_transfers("peer", 1.0).fail_transfers("any", 1.0)
    )
    assert shadowing.transfer_verdict(shadowing.rng_for("t"), "peer") == "corrupt"
    # no matching rule: no draw, no verdict
    quiet = FaultPlan(seed=1).fail_transfers("url", 1.0)
    assert quiet.transfer_verdict(quiet.rng_for("t"), "peer") is None


# -- serialization -----------------------------------------------------


def _hostile_plan():
    return (
        FaultPlan(seed=42)
        .crash("w0", at=3.0)
        .crash("w1", after_tasks=2)
        .fail_transfers("any", 0.1)
        .corrupt_transfers("peer", 0.05)
        .degrade_link("w2", at=1.0, factor=0.25)
        .disconnect("w3", at=5.0)
        .crash_manager(after_tasks=3)
    )


def test_plan_json_round_trip():
    plan = _hostile_plan()
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert len(clone) == 7
    assert clone.manager_crashes == [ManagerCrash(after_tasks=3)]
    # the clone replays the identical verdict stream
    r1, r2 = plan.rng_for("x"), clone.rng_for("x")
    assert [plan.transfer_verdict(r1, "peer") for _ in range(20)] == [
        clone.transfer_verdict(r2, "peer") for _ in range(20)
    ]


# -- membership property tests -----------------------------------------

_name = st.text(alphabet="wabc0123456789", min_size=1, max_size=8)
_at = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
_crash_at = st.floats(
    min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
)

_join_specs = st.builds(
    WorkerJoin,
    worker=_name,
    at=_at,
    cores=st.integers(min_value=1, max_value=64),
    memory=st.integers(min_value=1, max_value=10**6),
    disk=st.integers(min_value=1, max_value=10**7),
    gpus=st.integers(min_value=0, max_value=8),
)
_drain_specs = st.builds(WorkerDrain, worker=_name, at=_at)
_crash_specs = st.builds(lambda w, at: WorkerCrash(w, at=at), _name, _crash_at)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    joins=st.lists(_join_specs, max_size=5),
    drains=st.lists(_drain_specs, max_size=5),
    crashes=st.lists(_crash_specs, max_size=5),
)
def test_membership_plan_round_trips_and_replays(seed, joins, drains, crashes):
    """Any mix of joins/drains/crashes survives JSON exactly, and the
    clone replays the identical deterministic verdict streams."""
    plan = FaultPlan(seed=seed, joins=joins, drains=drains, crashes=crashes)
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert len(clone) == len(joins) + len(drains) + len(crashes)
    assert clone.joins == joins and clone.drains == drains
    # rng_for streams are a pure function of (seed, scope): the clone's
    # replay is bit-identical, and distinct scopes stay independent
    for scope in ("membership", "transfers"):
        assert [plan.rng_for(scope).random() for _ in range(5)] == [
            clone.rng_for(scope).random() for _ in range(5)
        ]
    # real-runtime compilation is deterministic too: same per-worker
    # sabotage configs and the same launch-ordered join schedule
    names = sorted({s.worker for s in drains} | {s.worker for s in crashes})
    assert worker_fault_configs(plan, names) == worker_fault_configs(clone, names)
    assert join_schedule(plan) == join_schedule(clone)
    assert [j.at for j in join_schedule(plan)] == sorted(
        j.at for j in joins
    )


def test_plan_builders_cover_membership():
    plan = FaultPlan(seed=3).join("w9", at=1.0, cores=8).drain("w0", at=2.0)
    assert plan.joins == [WorkerJoin("w9", at=1.0, cores=8)]
    assert plan.drains == [WorkerDrain("w0", at=2.0)]
    assert len(plan) == 2
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan


# -- real-runtime compilation ------------------------------------------


def test_worker_fault_configs_compile_per_worker():
    configs = worker_fault_configs(
        _hostile_plan().drain("w1", at=9.0), ["w0", "w1", "w2", "w3"]
    )
    assert configs["w0"].crash_at == 3.0 and configs["w0"].crash_after_tasks is None
    assert configs["w1"].crash_after_tasks == 2
    assert configs["w1"].drain_at == 9.0
    assert configs["w0"].drain_at is None
    assert configs["w3"].disconnect_at == 5.0
    # serve probabilities combine the peer-visible rules uniformly: every
    # worker can be picked as a replica source
    for cfg in configs.values():
        assert cfg.fail_serve_p == pytest.approx(0.1)
        assert cfg.corrupt_serve_p == pytest.approx(0.05)
    # w2's link degrade has no real-runtime analogue: config otherwise clean
    assert configs["w2"].crash_at is None and configs["w2"].disconnect_at is None


def test_worker_fault_configs_combine_independent_rules():
    plan = FaultPlan().fail_transfers("peer", 0.5).fail_transfers("any", 0.5)
    cfg = worker_fault_configs(plan, ["w0"])["w0"]
    assert cfg.fail_serve_p == pytest.approx(0.75)
    # manager/url-only rules never reach a worker's serve path
    plan = FaultPlan().fail_transfers("manager", 1.0).corrupt_transfers("url", 1.0)
    cfg = worker_fault_configs(plan, ["w0"])["w0"]
    assert cfg.empty


def test_worker_config_round_trips_json_and_pickle():
    cfg = WorkerFaultConfig(
        worker="w1", seed=9, crash_after_tasks=3, corrupt_serve_p=0.2
    )
    assert WorkerFaultConfig.from_json(cfg.to_json()) == cfg
    assert pickle.loads(pickle.dumps(cfg)) == cfg
    assert not cfg.empty
    assert WorkerFaultConfig(worker="w1", seed=9).empty


def test_serve_verdict_fixed_draw_order():
    cfg = WorkerFaultConfig(worker="w0", seed=3, corrupt_serve_p=1.0, fail_serve_p=1.0)
    rng = cfg.rng()
    # corrupt wins when both fire
    assert [cfg.serve_verdict(rng) for _ in range(3)] == ["corrupt"] * 3
    # every serve consumes exactly two draws regardless of probabilities,
    # so changing one probability cannot shift later verdicts' coins
    quiet = WorkerFaultConfig(worker="w0", seed=3)
    rng = quiet.rng()
    assert [quiet.serve_verdict(rng) for _ in range(3)] == [None] * 3
    reference = quiet.rng()
    for _ in range(6):
        reference.random()
    assert rng.random() == reference.random()
