"""The chaos demo driver converges and leaves a replayable log behind."""

from repro.faults.demo import main
from repro.observe.cli import format_log_status, replay_status
from repro.observe.txnlog import read_transactions


def test_demo_writes_a_replayable_chaos_log(tmp_path, capsys):
    log = str(tmp_path / "chaos.jsonl")
    assert main(["--seed", "42", "--log", log]) == 0
    out = capsys.readouterr().out
    assert "24/24 tasks done" in out

    header, events = read_transactions(log, strict=True)
    assert header["runtime"] == "sim"
    st = replay_status(events, runtime=header["runtime"])
    assert st.workflow_done
    assert st.faults_injected > 0
    assert st.tasks_requeued > 0
    text = format_log_status(st)
    assert "faults injected:" in text
    assert "recovery:" in text


def test_demo_is_deterministic_for_a_seed(tmp_path):
    a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
    assert main(["--seed", "7", "--log", a]) == 0
    assert main(["--seed", "7", "--log", b]) == 0
    _, ea = read_transactions(a)
    _, eb = read_transactions(b)
    # identical event *shape*: identities (nonce names, task counters)
    # differ per process, but kinds, times, workers and sizes replay
    assert [(e.time, e.kind, e.worker, e.size) for e in ea] == [
        (e.time, e.kind, e.worker, e.size) for e in eb
    ]
