"""Tests for the worker cache, sandboxes, and the task executor."""

import os

import pytest

from repro.core.files import CacheLevel
from repro.core.resources import Resources
from repro.worker.cache import WorkerCache
from repro.worker.executor import run_command
from repro.worker.sandbox import Sandbox, SandboxError


# -- cache ---------------------------------------------------------------


def test_insert_bytes_and_query(tmp_path):
    cache = WorkerCache(str(tmp_path / "c"))
    entry = cache.insert_bytes(b"hello", "file-1", CacheLevel.WORKFLOW, now=5.0)
    assert cache.has("file-1")
    assert entry.size == 5
    assert not entry.is_dir
    assert cache.total_bytes() == 5
    with open(cache.path_of("file-1"), "rb") as f:
        assert f.read() == b"hello"


def test_insert_from_moves_staged_file(tmp_path):
    cache = WorkerCache(str(tmp_path / "c"))
    staged = cache.staging_path("dl")
    with open(staged, "wb") as f:
        f.write(b"x" * 100)
    cache.insert_from(staged, "obj", CacheLevel.WORKER)
    assert not os.path.exists(staged)
    assert cache.entry("obj").size == 100


def test_insert_directory_object(tmp_path):
    cache = WorkerCache(str(tmp_path / "c"))
    staged = cache.staging_path("dir")
    os.makedirs(os.path.join(staged, "sub"))
    with open(os.path.join(staged, "sub", "f"), "w") as f:
        f.write("abc")
    entry = cache.insert_from(staged, "mydir", CacheLevel.WORKER)
    assert entry.is_dir
    assert entry.size == 3


def test_insert_idempotent(tmp_path):
    cache = WorkerCache(str(tmp_path / "c"))
    cache.insert_bytes(b"one", "n", CacheLevel.WORKFLOW)
    cache.insert_bytes(b"one", "n", CacheLevel.WORKFLOW)
    assert cache.total_bytes() == 3


def test_remove(tmp_path):
    cache = WorkerCache(str(tmp_path / "c"))
    cache.insert_bytes(b"x", "n", CacheLevel.WORKFLOW)
    assert cache.remove("n")
    assert not cache.has("n")
    assert not os.path.exists(cache.path_of("n"))
    assert not cache.remove("n")


def test_worker_level_survives_restart(tmp_path):
    root = str(tmp_path / "c")
    cache = WorkerCache(root)
    cache.insert_bytes(b"keep", "keep-me", CacheLevel.WORKER)
    cache.insert_bytes(b"drop", "drop-me", CacheLevel.WORKFLOW)
    reopened = WorkerCache(root)
    assert reopened.has("keep-me")
    assert not reopened.has("drop-me")
    assert not os.path.exists(reopened.path_of("drop-me"))


def test_restart_clears_staging(tmp_path):
    root = str(tmp_path / "c")
    cache = WorkerCache(root)
    staged = cache.staging_path("partial")
    with open(staged, "wb") as f:
        f.write(b"partial download")
    reopened = WorkerCache(root)
    assert os.listdir(reopened.staging_dir) == []


def test_illegal_cache_names_rejected(tmp_path):
    cache = WorkerCache(str(tmp_path / "c"))
    with pytest.raises(ValueError):
        cache.path_of("../escape")
    with pytest.raises(ValueError):
        cache.path_of("a/b")


def test_staging_paths_unique(tmp_path):
    cache = WorkerCache(str(tmp_path / "c"))
    p1 = cache.staging_path("same")
    with open(p1, "w") as f:
        f.write("x")
    p2 = cache.staging_path("same")
    assert p1 != p2


def test_eviction_view_shapes(tmp_path):
    cache = WorkerCache(str(tmp_path / "c"))
    cache.insert_bytes(b"abc", "n", CacheLevel.WORKER, now=9.0)
    info = cache.eviction_view()[0]
    assert (info.cache_name, info.size, info.level, info.last_used) == (
        "n", 3, CacheLevel.WORKER, 9.0,
    )


# -- sandbox ------------------------------------------------------------


@pytest.fixture()
def cache(tmp_path):
    return WorkerCache(str(tmp_path / "cache"))


def test_link_inputs_and_read(tmp_path, cache):
    cache.insert_bytes(b"data!", "obj-a", CacheLevel.WORKFLOW)
    sb = Sandbox(str(tmp_path / "sb"), "t1")
    sb.link_inputs(cache, [("input.txt", "obj-a"), ("nested/d.txt", "obj-a")])
    assert open(os.path.join(sb.path, "input.txt")).read() == "data!"
    assert open(os.path.join(sb.path, "nested/d.txt")).read() == "data!"
    sb.destroy()
    assert not os.path.exists(sb.path)
    assert cache.has("obj-a")  # destroying the sandbox never hurts the cache


def test_link_directory_input(tmp_path, cache):
    staged = cache.staging_path("d")
    os.makedirs(staged)
    with open(os.path.join(staged, "member"), "w") as f:
        f.write("m")
    cache.insert_from(staged, "dir-obj", CacheLevel.WORKFLOW)
    sb = Sandbox(str(tmp_path / "sb"), "t2")
    sb.link_inputs(cache, [("software", "dir-obj")])
    assert open(os.path.join(sb.path, "software", "member")).read() == "m"


def test_missing_input_raises(tmp_path, cache):
    sb = Sandbox(str(tmp_path / "sb"), "t3")
    with pytest.raises(SandboxError):
        sb.link_inputs(cache, [("x", "not-there")])


def test_escape_rejected(tmp_path, cache):
    cache.insert_bytes(b"x", "o", CacheLevel.WORKFLOW)
    sb = Sandbox(str(tmp_path / "sb"), "t4")
    with pytest.raises(SandboxError):
        sb.link_inputs(cache, [("../../evil", "o")])


def test_harvest_outputs(tmp_path, cache):
    sb = Sandbox(str(tmp_path / "sb"), "t5")
    with open(os.path.join(sb.path, "out.txt"), "w") as f:
        f.write("result")
    names = sb.harvest_outputs(cache, [("out.txt", "temp-xyz", CacheLevel.WORKFLOW)])
    assert names == ["temp-xyz"]
    assert cache.has("temp-xyz")
    assert open(cache.path_of("temp-xyz")).read() == "result"


def test_harvest_missing_output_raises(tmp_path, cache):
    sb = Sandbox(str(tmp_path / "sb"), "t6")
    with pytest.raises(SandboxError, match="did not produce"):
        sb.harvest_outputs(cache, [("never.txt", "n", CacheLevel.WORKFLOW)])


def test_disk_usage_counts_only_task_data(tmp_path, cache):
    cache.insert_bytes(b"i" * 1000, "in", CacheLevel.WORKFLOW)
    sb = Sandbox(str(tmp_path / "sb"), "t7")
    sb.link_inputs(cache, [("input", "in")])
    with open(os.path.join(sb.path, "produced"), "wb") as f:
        f.write(b"o" * 500)
    assert sb.disk_usage() == 500


# -- executor ----------------------------------------------------------


def test_run_command_success(tmp_path):
    out = run_command(
        "echo hello", str(tmp_path), {}, Resources(cores=1)
    )
    assert out.exit_code == 0
    assert out.output.strip() == "hello"
    assert out.execution_time >= 0


def test_run_command_env_extends(tmp_path):
    out = run_command(
        "echo $MY_VAR", str(tmp_path), {"MY_VAR": "42"}, Resources(cores=1)
    )
    assert out.output.strip() == "42"


def test_run_command_failure_code(tmp_path):
    out = run_command("exit 3", str(tmp_path), {}, Resources(cores=1))
    assert out.exit_code == 3


def test_run_command_cwd_is_sandbox(tmp_path):
    out = run_command("pwd", str(tmp_path), {}, Resources(cores=1))
    assert out.output.strip() == os.path.realpath(str(tmp_path))


def test_run_command_timeout_kills(tmp_path):
    out = run_command(
        "sleep 30", str(tmp_path), {}, Resources(cores=1), timeout=0.3
    )
    assert out.exit_code == -9
    assert "wall_time" in out.exceeded


def test_run_command_disk_exceeded(tmp_path):
    out = run_command(
        "dd if=/dev/zero of=big bs=1M count=3 2>/dev/null",
        str(tmp_path),
        {},
        Resources(cores=1, disk=1),
        sandbox_usage=lambda: 3_000_000,
    )
    assert "disk" in out.exceeded


def test_run_command_memory_limit(tmp_path):
    # allocating ~200 MB under a 50 MB RLIMIT_AS must fail
    code = "import ctypes; b = bytearray(200_000_000); print(len(b))"
    out = run_command(
        f'python3 -c "{code}"',
        str(tmp_path),
        {},
        Resources(cores=1, memory=50),
    )
    assert out.exit_code != 0


def test_run_command_bad_spawn(tmp_path):
    out = run_command("echo x", str(tmp_path / "missing-dir"), {}, Resources())
    assert out.exit_code == 127
