"""Tests for the peer transfer server and fetch clients."""

import os

import pytest

from repro.util.hashing import hash_bytes
from repro.worker.transfers import (
    PeerTransferServer,
    TransferFailed,
    fetch_from_peer,
    fetch_from_url,
    pack_directory,
    unpack_directory,
    verify_content_name,
)


@pytest.fixture()
def served_objects(tmp_path):
    """A peer server over a small dictionary of on-disk objects."""
    objects = {}

    def add_file(name, data):
        path = tmp_path / f"obj-{len(objects)}"
        path.write_bytes(data)
        objects[name] = str(path)
        return str(path)

    server = PeerTransferServer(lambda name: objects.get(name))
    yield server, objects, add_file, tmp_path
    server.stop()


def test_fetch_file_from_peer(served_objects, tmp_path):
    server, objects, add_file, _ = served_objects
    add_file("obj-a", b"peer data" * 100)
    dest = tmp_path / "downloaded"
    size = fetch_from_peer(server.host, server.port, "obj-a", str(dest))
    assert size == 900
    assert dest.read_bytes() == b"peer data" * 100


def test_fetch_directory_from_peer(served_objects, tmp_path):
    server, objects, _, root = served_objects
    src = root / "tree"
    (src / "sub").mkdir(parents=True)
    (src / "sub" / "f.txt").write_text("nested")
    (src / "top.txt").write_text("top")
    objects["dir-obj"] = str(src)
    dest = tmp_path / "received"
    fetch_from_peer(server.host, server.port, "dir-obj", str(dest))
    assert (dest / "sub" / "f.txt").read_text() == "nested"
    assert (dest / "top.txt").read_text() == "top"


def test_fetch_missing_object_fails(served_objects, tmp_path):
    server, *_ = served_objects
    with pytest.raises(TransferFailed, match="does not hold"):
        fetch_from_peer(server.host, server.port, "ghost", str(tmp_path / "x"))


def test_fetch_unreachable_peer_fails(tmp_path):
    with pytest.raises(TransferFailed, match="cannot reach"):
        fetch_from_peer("127.0.0.1", 1, "x", str(tmp_path / "x"), timeout=0.5)


def test_content_verification_rejects_corruption(served_objects, tmp_path):
    server, objects, add_file, _ = served_objects
    # claim a content name that does not match the served bytes
    bogus_name = f"file-md5-{hash_bytes(b'expected content')}"
    add_file(bogus_name, b"actually different")
    dest = tmp_path / "x"
    with pytest.raises(TransferFailed, match="verification"):
        fetch_from_peer(server.host, server.port, bogus_name, str(dest))
    assert not dest.exists()


def test_content_verification_accepts_match(served_objects, tmp_path):
    server, objects, add_file, _ = served_objects
    data = b"genuine bytes"
    name = f"file-md5-{hash_bytes(data)}"
    add_file(name, data)
    dest = tmp_path / "ok"
    fetch_from_peer(server.host, server.port, name, str(dest))
    assert dest.read_bytes() == data


def test_verify_content_name_semantics(tmp_path):
    p = tmp_path / "f"
    p.write_bytes(b"abc")
    good = f"file-md5-{hash_bytes(b'abc')}"
    bad = f"file-md5-{hash_bytes(b'xyz')}"
    assert verify_content_name(good, str(p))
    assert not verify_content_name(bad, str(p))
    # non-content names verify vacuously
    assert verify_content_name("temp-rnd-123", str(p))
    assert verify_content_name("url-meta-abc", str(p))


def test_fetch_from_file_url(tmp_path):
    src = tmp_path / "archive.bin"
    src.write_bytes(b"archived" * 50)
    dest = tmp_path / "out.bin"
    size = fetch_from_url(f"file://{src}", str(dest))
    assert size == 400
    assert dest.read_bytes() == src.read_bytes()


def test_fetch_from_file_url_directory(tmp_path):
    src = tmp_path / "srcdir"
    src.mkdir()
    (src / "a").write_text("A")
    dest = tmp_path / "destdir"
    size = fetch_from_url(f"file://{src}", str(dest))
    assert size == 1
    assert (dest / "a").read_text() == "A"


def test_fetch_missing_url(tmp_path):
    with pytest.raises(TransferFailed, match="missing"):
        fetch_from_url(f"file://{tmp_path}/never", str(tmp_path / "o"))


def test_pack_unpack_round_trip(tmp_path):
    src = tmp_path / "tree"
    (src / "deep" / "deeper").mkdir(parents=True)
    (src / "deep" / "deeper" / "leaf").write_bytes(b"leafdata")
    (src / "root.txt").write_bytes(b"rootdata")
    tar = tmp_path / "packed.tar"
    pack_directory(str(src), str(tar))
    out = tmp_path / "unpacked"
    unpack_directory(str(tar), str(out))
    assert (out / "deep" / "deeper" / "leaf").read_bytes() == b"leafdata"
    assert (out / "root.txt").read_bytes() == b"rootdata"


def test_concurrent_fetches_from_one_server(served_objects, tmp_path):
    import threading

    server, objects, add_file, _ = served_objects
    add_file("shared", os.urandom(100_000))
    results = []

    def grab(i):
        dest = tmp_path / f"copy{i}"
        fetch_from_peer(server.host, server.port, "shared", str(dest))
        results.append(dest.stat().st_size)

    threads = [threading.Thread(target=grab, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert results == [100_000] * 8


def test_server_stop_idempotent(served_objects):
    server, *_ = served_objects
    server.stop()
    server.stop()
