"""Tests for the resident library instance and the pytask runner."""

import os
import subprocess
import sys

import pytest

from repro.protocol import serialization as ser
from repro.worker import pytask_runner
from repro.worker.library_instance import (
    LibraryError,
    LibraryInstanceHandle,
    build_payload,
    pack_invocation,
    unpack_result,
)


def _square(x):
    return x * x


def _fail(msg):
    raise ValueError(msg)


@pytest.fixture()
def instance():
    handle = LibraryInstanceHandle(
        "testlib", build_payload({"square": _square, "fail": _fail}), function_slots=2
    )
    yield handle
    handle.stop()


def test_instance_announces_functions(instance):
    assert instance.functions == ["fail", "square"]
    assert instance.alive()


def test_invoke_and_wait(instance):
    instance.invoke("i1", "square", pack_invocation((7,), {}))
    result = unpack_result(instance.wait_result("i1", timeout=30))
    assert result == 49


def test_concurrent_invocations(instance):
    for i in range(4):
        instance.invoke(f"i{i}", "square", pack_invocation((i,), {}))
    results = [
        unpack_result(instance.wait_result(f"i{i}", timeout=30)) for i in range(4)
    ]
    assert results == [0, 1, 4, 9]


def test_remote_exception_reraised(instance):
    instance.invoke("bad", "fail", pack_invocation(("boom",), {}))
    with pytest.raises(ValueError, match="boom"):
        unpack_result(instance.wait_result("bad", timeout=30))


def test_unknown_function_rejected_locally(instance):
    with pytest.raises(LibraryError):
        instance.invoke("x", "nope", pack_invocation((), {}))


def test_slot_accounting(instance):
    assert instance.has_free_slot()
    instance.invoke("s1", "square", pack_invocation((1,), {}))
    instance.invoke("s2", "square", pack_invocation((2,), {}))
    # two slots in flight; full until results are collected
    instance.wait_result("s1", timeout=30)
    instance.wait_result("s2", timeout=30)
    assert instance.has_free_slot()


def test_stop_terminates_process(instance):
    instance.stop()
    assert not instance.alive()


def test_broken_payload_raises():
    with pytest.raises(LibraryError):
        LibraryInstanceHandle("broken", b"not a pickle")


def test_function_state_loaded_once():
    """Initialization happens in the instance, not per invocation."""
    def probe():
        return os.getpid()

    handle = LibraryInstanceHandle("pids", build_payload({"probe": probe}), 2)
    try:
        handle.invoke("a", "probe", pack_invocation((), {}))
        handle.invoke("b", "probe", pack_invocation((), {}))
        pid_a = unpack_result(handle.wait_result("a", timeout=30))
        pid_b = unpack_result(handle.wait_result("b", timeout=30))
        # forked per invocation: distinct pids, neither is the worker's
        assert pid_a != pid_b
        assert pid_a != os.getpid() and pid_b != os.getpid()
    finally:
        handle.stop()


# -- pytask runner -----------------------------------------------------------


def _write_payload(path, func, *args, **kwargs):
    # the runner expects the portable envelope the manager produces
    with open(path, "wb") as f:
        f.write(ser.dumps_portable({"func": func, "args": args, "kwargs": kwargs}))


def test_pytask_runner_success(tmp_path):
    payload = tmp_path / "p.bin"
    result = tmp_path / "r.bin"
    _write_payload(payload, _square, 6)
    code = pytask_runner.main([str(payload), str(result)])
    assert code == 0
    out = ser.loads(result.read_bytes())
    assert out == {"ok": True, "value": 36}


def test_pytask_runner_exception(tmp_path):
    payload = tmp_path / "p.bin"
    result = tmp_path / "r.bin"
    _write_payload(payload, _fail, "nope")
    code = pytask_runner.main([str(payload), str(result)])
    assert code == 1
    out = ser.loads(result.read_bytes())
    assert out["ok"] is False
    assert isinstance(out["error"], ValueError)
    assert "nope" in out["traceback"]


def test_pytask_runner_bad_usage(tmp_path):
    assert pytask_runner.main([]) == 2
    assert pytask_runner.main([str(tmp_path / "missing"), "out"]) == 2


def test_pytask_runner_as_subprocess(tmp_path):
    """End to end through the real command line, as a task would run it."""
    payload = tmp_path / "p.bin"
    result = tmp_path / "r.bin"
    _write_payload(payload, _square, 9)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.worker.pytask_runner", str(payload), str(result)],
        capture_output=True,
        timeout=60,
    )
    assert proc.returncode == 0
    assert ser.loads(result.read_bytes())["value"] == 81


def test_pytask_runner_unserializable_result(tmp_path):
    def returns_socket():
        import socket

        return socket.socket()

    payload = tmp_path / "p.bin"
    result = tmp_path / "r.bin"
    _write_payload(payload, returns_socket)
    code = pytask_runner.main([str(payload), str(result)])
    assert code == 0
    out = ser.loads(result.read_bytes())
    assert out.get("unserializable") is True
    assert "socket" in out["value"]
