"""Worker unit tests against a scripted (fake) manager connection."""

import threading
import time

import pytest

from repro.core.files import CacheLevel
from repro.protocol.connection import Connection, listen
from repro.protocol.messages import M, validate, validate_batch
from repro.worker.worker import Worker


class FakeManager:
    """Accepts one worker and records every message it sends."""

    def __init__(self):
        self.sock = listen()
        self.host, self.port = self.sock.getsockname()
        self.conn = None
        self.messages = []
        self._lock = threading.Lock()
        self._accepted = threading.Event()
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self):
        s, _ = self.sock.accept()
        self.conn = Connection(s)
        self._accepted.set()
        try:
            while True:
                msg = self.conn.recv_message()
                if msg.get("type") == M.BATCH:
                    # the worker's BatchSender coalesces notices; sub-
                    # messages never announce trailing payload bytes
                    validate_batch(msg)
                    with self._lock:
                        for sub in msg["messages"]:
                            self.messages.append((sub, None))
                    continue
                validate(msg)
                payload = None
                if msg.get("type") == M.FILE_DATA and msg.get("found"):
                    payload = self.conn.recv_bytes(int(msg["size"]))
                elif msg.get("type") == M.TASK_DONE and msg.get("result_size"):
                    payload = self.conn.recv_bytes(int(msg["result_size"]))
                with self._lock:
                    self.messages.append((msg, payload))
        except Exception:
            pass

    def wait_for(self, mtype, timeout=20.0, predicate=None):
        deadline = time.time() + timeout
        while time.time() < deadline:
            with self._lock:
                for msg, payload in self.messages:
                    if msg.get("type") == mtype and (
                        predicate is None or predicate(msg)
                    ):
                        return msg, payload
            time.sleep(0.02)
        raise TimeoutError(f"no {mtype} message arrived")

    def send(self, msg, payload=None):
        self._accepted.wait(10)
        self.conn.send_message(msg)
        if payload is not None:
            self.conn.send_bytes(payload)


@pytest.fixture()
def rig(tmp_path):
    fake = FakeManager()
    worker = Worker(
        fake.host, fake.port, str(tmp_path / "w"),
        cores=2, memory=1000, disk=1000, task_timeout=30.0,
    )
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    yield fake, worker
    worker.shutdown()


def test_register_reports_capacity_and_ports(rig):
    fake, worker = rig
    msg, _ = fake.wait_for(M.REGISTER)
    assert msg["capacity"]["cores"] == 2
    assert msg["transfer_port"] == worker._peer_server.port
    assert msg["cached"] == []


def test_put_file_then_cache_update(rig):
    fake, worker = rig
    fake.wait_for(M.REGISTER)
    data = b"pushed-bytes"
    fake.send(
        {
            "type": M.PUT_FILE,
            "cache_name": "obj-1",
            "size": len(data),
            "level": int(CacheLevel.WORKFLOW),
            "transfer_id": "x1",
        },
        data,
    )
    msg, _ = fake.wait_for(M.CACHE_UPDATE)
    assert msg["cache_name"] == "obj-1"
    assert msg["size"] == len(data)
    assert msg["transfer_id"] == "x1"
    assert worker.cache.has("obj-1")


def test_execute_round_trip(rig):
    fake, worker = rig
    fake.wait_for(M.REGISTER)
    data = b"shout"
    fake.send(
        {
            "type": M.PUT_FILE, "cache_name": "in-1", "size": len(data),
            "level": 1, "transfer_id": "x1",
        },
        data,
    )
    fake.wait_for(M.CACHE_UPDATE)
    fake.send(
        {
            "type": M.EXECUTE,
            "task_id": "t9",
            "command": "tr a-z A-Z < word > loud",
            "inputs": [["word", "in-1"]],
            "outputs": [["loud", "out-1", 1]],
            "env": {},
            "resources": {"cores": 1},
        }
    )
    done, _ = fake.wait_for(M.TASK_DONE)
    assert done["exit_code"] == 0
    assert worker.cache.has("out-1")
    with open(worker.cache.path_of("out-1"), "rb") as f:
        assert f.read() == b"SHOUT"


def test_fetch_failure_reports_cache_invalid(rig):
    fake, worker = rig
    fake.wait_for(M.REGISTER)
    fake.send(
        {
            "type": M.FETCH_FILE,
            "cache_name": "ghost",
            "source": {"kind": "url", "url": "file:///nonexistent/path"},
            "transfer_id": "x7",
            "level": 1,
        }
    )
    msg, _ = fake.wait_for(M.CACHE_INVALID)
    assert msg["cache_name"] == "ghost"
    assert msg["transfer_id"] == "x7"
    assert "missing" in msg["reason"]


def test_send_back_missing_object(rig):
    fake, worker = rig
    fake.wait_for(M.REGISTER)
    fake.send({"type": M.SEND_BACK, "cache_name": "never-was"})
    msg, payload = fake.wait_for(M.FILE_DATA)
    assert msg["found"] is False
    assert payload is None


def test_unlink_removes_object(rig):
    fake, worker = rig
    fake.wait_for(M.REGISTER)
    worker.cache.insert_bytes(b"x", "gone-soon", CacheLevel.WORKFLOW)
    fake.send({"type": M.UNLINK, "cache_name": "gone-soon"})
    deadline = time.time() + 10
    while worker.cache.has("gone-soon") and time.time() < deadline:
        time.sleep(0.02)
    assert not worker.cache.has("gone-soon")


def test_stage_minitask_round_trip(rig):
    fake, worker = rig
    fake.wait_for(M.REGISTER)
    fake.send(
        {
            "type": M.PUT_FILE, "cache_name": "tar-1", "size": 3,
            "level": 1, "transfer_id": "x1",
        },
        b"abc",
    )
    fake.wait_for(M.CACHE_UPDATE)
    fake.send(
        {
            "type": M.STAGE_MINITASK,
            "cache_name": "staged-1",
            "spec": {
                "command": "rev < input > output",
                "inputs": [["input", "tar-1"]],
                "output_name": "output",
                "env": {},
                "resources": {"cores": 1},
            },
            "level": 1,
            "transfer_id": "x2",
        }
    )
    msg, _ = fake.wait_for(
        M.CACHE_UPDATE, predicate=lambda m: m["cache_name"] == "staged-1"
    )
    assert msg["transfer_id"] == "x2"
    with open(worker.cache.path_of("staged-1"), "rb") as f:
        assert f.read().strip() == b"cba"
