"""Fair-share acceptance in the simulator (ISSUE: service-mode tenancy).

Tenant A floods the queue with a large batch, then tenant B submits a
small workflow.  Under FIFO across tenants B waits for nearly all of
A's tasks; under deficit-round-robin B's tasks interleave at the front
and its makespan collapses.  The acceptance bar: fair-share makespan
for B is at most 25% of its FIFO-starved makespan.
"""

from repro.core.task import Task
from repro.sim.simmanager import SimCluster, SimManager

FLOOD = 1000
SMALL = 10


def _run_scenario(fair_share: bool) -> tuple[float, float]:
    """Returns (tenant B makespan, overall makespan)."""
    c = SimCluster()
    c.add_workers(4, cores=4)
    m = SimManager(c, fair_share=fair_share)

    b_tasks = []
    for i in range(FLOOD):
        t = Task(f"flood {i}")
        t.set_tenant("alice")
        m.submit(t, duration=1.0)
    for i in range(SMALL):
        t = Task(f"small {i}")
        t.set_tenant("bob")
        m.submit(t, duration=1.0)
        b_tasks.append(t)
    stats = m.run()
    assert stats.tasks_done == FLOOD + SMALL
    b_makespan = max(t.finished_at for t in b_tasks)
    return b_makespan, stats.makespan


def test_fair_share_rescues_small_tenant_from_flood():
    b_fifo, total_fifo = _run_scenario(fair_share=False)
    b_fair, total_fair = _run_scenario(fair_share=True)

    # FIFO starves B behind A's 1000-task flood: B finishes near the end
    assert b_fifo > 0.5 * total_fifo
    # DRR interleaves B's 10 tasks at the head of the dispatch order
    assert b_fair <= 0.25 * b_fifo
    # fairness does not cost throughput: overall makespan is unchanged
    assert abs(total_fair - total_fifo) <= 0.05 * total_fifo


def test_single_tenant_schedule_identical_with_and_without_fair_share():
    """With one tenant, DRR must be a no-op: identical task timings."""

    def run(fair_share):
        c = SimCluster()
        c.add_workers(3, cores=2)
        m = SimManager(c, fair_share=fair_share)
        tasks = []
        for i in range(40):
            t = Task(f"work {i}")
            t.priority = float(i % 3)
            m.submit(t, duration=0.5 + (i % 5) * 0.3)
            tasks.append(t)
        m.run()
        return [(t.task_id, t.finished_at) for t in tasks]

    assert run(True) == run(False)
