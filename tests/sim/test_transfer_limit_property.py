"""Property: per-source transfer concurrency never exceeds its limit.

The Current Transfer Table exists to bound how many simultaneous
transfers any one source serves (paper §3.3, Fig. 11).  Both runtimes
emit ``transfer_start``/``transfer_end`` events tagged with the serving
source, so the invariant is checked by replaying the shared event log:
at no instant may a source's open-transfer count exceed
``transfers.limit_for(source)``.  Randomized fan-out workflows — many
consumers of a few popular files across workers of varying counts and
limits — probe the scheduler's slot reservation under contention.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import peak_transfer_concurrency
from repro.core.task import Task, TaskState
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager


def _assert_peaks_within_limits(manager):
    peaks = peak_transfer_concurrency(manager.log)
    checked = 0
    for source, peak in peaks.items():
        if source == "@retrieve":
            continue  # result bring-back is not limit-governed
        limit = manager.transfers.limit_for(source)
        if limit is not None:
            checked += 1
            assert peak <= limit, (
                f"source {source} served {peak} concurrent transfers "
                f"(limit {limit})"
            )
    return checked


@settings(max_examples=30, deadline=None)
@given(
    n_workers=st.integers(2, 6),
    n_files=st.integers(1, 3),
    n_tasks=st.integers(4, 24),
    worker_limit=st.integers(1, 3),
    source_limit=st.integers(1, 4),
    file_size=st.integers(10_000, 5_000_000),
)
def test_property_source_concurrency_bounded(
    n_workers, n_files, n_tasks, worker_limit, source_limit, file_size
):
    cluster = SimCluster()
    cluster.add_workers(n_workers, cores=4)
    m = SimManager(
        cluster,
        worker_transfer_limit=worker_limit,
        source_transfer_limit=source_limit,
    )
    files = [
        m.declare_dataset(f"popular-{i}", file_size) for i in range(n_files)
    ]
    tasks = []
    for i in range(n_tasks):
        t = Task(f"consume {i}")
        t.add_input(files[i % n_files], "data")
        tasks.append(t)
        m.submit(t, duration=1.0)
    m.run(finalize=False)
    assert all(t.state == TaskState.DONE for t in tasks)
    assert _assert_peaks_within_limits(m) > 0


@settings(max_examples=20, deadline=None)
@given(
    n_workers=st.integers(2, 5),
    depth=st.integers(1, 3),
    width=st.integers(2, 6),
    worker_limit=st.integers(1, 2),
)
def test_property_peer_fanout_bounded(n_workers, depth, width, worker_limit):
    """Temp-file fan-out: peers serving replicas stay under their cap.

    Each stage produces temp files that every task of the next stage
    reads, so replicas fan out worker-to-worker — the case the
    per-worker transfer limit exists for.
    """
    cluster = SimCluster()
    cluster.add_workers(n_workers, cores=2)
    m = SimManager(cluster, worker_transfer_limit=worker_limit)
    prev_outputs = []
    for stage in range(depth):
        outputs = []
        for i in range(width):
            out = m.declare_temp(size=500_000)
            t = Task(f"stage{stage}-{i}")
            for j, dep in enumerate(prev_outputs):
                t.add_input(dep, f"in{j}")
            t.add_output(out, "out")
            outputs.append(out)
            m.submit(t, duration=1.0)
        prev_outputs = outputs
    m.run(finalize=False)
    _assert_peaks_within_limits(m)


def test_manager_pushes_throttled_under_cold_start():
    """Deterministic spot check: 8 cold workers, manager capped at 2."""
    cluster = SimCluster()
    cluster.add_workers(8, cores=1)
    m = SimManager(cluster, source_transfer_limit=2)
    shared = m.declare_dataset("cold-input", 2_000_000)
    for i in range(8):
        t = Task(f"t{i}")
        t.add_input(shared, "data")
        m.submit(t, duration=1.0)
    m.run(finalize=False)
    peaks = peak_transfer_concurrency(m.log)
    assert peaks.get("@manager", 0) == 2  # saturated but never above
    assert _assert_peaks_within_limits(m) > 0
