"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.events import EventLog
from repro.sim.svgplot import COLOR_EXEC, COLOR_TRANSFER, svg_task_view, svg_worker_view
from repro.sim.workloads import blast_cluster, blast_workflow

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def run_log():
    cluster = blast_cluster(n_workers=4)
    return blast_workflow(cluster, n_tasks=20, seed=1).log


def _rects(path):
    tree = ET.parse(path)
    return tree.getroot().findall(f".//{SVG_NS}rect")


def test_task_view_svg_well_formed(tmp_path, run_log):
    out = tmp_path / "tasks.svg"
    svg_task_view(run_log, str(out))
    rects = _rects(out)
    exec_rects = [r for r in rects if r.get("fill") == COLOR_EXEC]
    assert len(exec_rects) == 20  # one bar per completed task


def test_worker_view_svg_well_formed(tmp_path, run_log):
    out = tmp_path / "workers.svg"
    svg_worker_view(run_log, str(out))
    rects = _rects(out)
    fills = {r.get("fill") for r in rects}
    assert COLOR_EXEC in fills
    assert COLOR_TRANSFER in fills  # cold-start staging is visible


def test_task_view_sampling(tmp_path, run_log):
    out = tmp_path / "sampled.svg"
    svg_task_view(run_log, str(out), max_tasks=5)
    exec_rects = [r for r in _rects(out) if r.get("fill") == COLOR_EXEC]
    assert len(exec_rects) == 5


def test_empty_log_produces_valid_svg(tmp_path):
    out = tmp_path / "empty.svg"
    svg_task_view(EventLog(), str(out))
    assert _rects(out)  # at least the background
    svg_worker_view(EventLog(), str(out))
    assert _rects(out)


def test_rect_coordinates_within_canvas(tmp_path, run_log):
    out = tmp_path / "bounds.svg"
    svg_worker_view(run_log, str(out), width=400)
    for r in _rects(out):
        x = float(r.get("x", 0))
        w = float(r.get("width"))
        assert x >= 0
        assert x + w <= 400 + 1.0  # minimum-width nudge tolerance


def test_task_view_category_coloring(tmp_path, run_log):
    from repro.sim.svgplot import CATEGORY_PALETTE

    out = tmp_path / "colored.svg"
    svg_task_view(run_log, str(out), color_by_category=True)
    fills = {r.get("fill") for r in _rects(out)}
    # blast tasks are one category: exactly one palette color used
    assert CATEGORY_PALETTE[0] in fills


def test_task_view_multiple_categories_distinct_colors(tmp_path):
    from repro.sim.svgplot import CATEGORY_PALETTE
    from repro.sim.workloads import topeft_workflow

    result = topeft_workflow(in_cluster=True, n_chunks=16, fan_in=4,
                             n_workers=4, process_time=5.0)
    out = tmp_path / "topeft.svg"
    svg_task_view(result.stats.log, str(out), color_by_category=True)
    fills = {r.get("fill") for r in _rects(out)}
    # process-data / process-mc / accumulate → at least 3 palette colors
    assert len(fills & set(CATEGORY_PALETTE)) >= 3
