"""Elastic-cluster scenarios for the simulated runtime.

Scripted membership schedules — workers joining mid-run, workers
gracefully draining, an autoscaler growing and shrinking the fleet
under a continuous streaming workload — must be invisible to the
workflow: byte-identical outputs vs a static cluster, zero sole-holder
cache objects lost on a drain, and bit-for-bit determinism per seed.
The chaos variants race the drain protocol against crashes (a crash
*during* a drain, a join crashed moments after it materializes) and
still demand convergence.
"""

from repro.core.task import Task, TaskState
from repro.faults import FaultPlan, SimFaultInjector
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager
from repro.sim.workloads import (
    Autoscaler,
    SimAutoscaleDriver,
    streaming_genome_workload,
)

MB = 1_000_000


def _build(n_workers, seed=7, nonce="elastic-test"):
    cluster = SimCluster()
    for i in range(n_workers):
        cluster.add_worker(cores=4, worker_id=f"w{i}")
    # run_nonce pinned so cache names (and thus outputs) are comparable
    # across fleets and runs
    m = SimManager(cluster, seed=seed, run_nonce=nonce, max_task_retries=10)
    return m


def _two_stage(m, n=12, duration=2.0):
    """The chaos suite's produce/consume DAG: peer traffic guaranteed."""
    shared = m.declare_dataset("shared", MB)
    temps, tasks = [], []
    for i in range(n):
        temp = m.declare_temp()
        t = Task(f"produce{i}").add_input(shared, "d").add_output(temp, "out")
        m.submit(t, duration=duration, output_sizes={"out": MB})
        temps.append(temp)
        tasks.append(t)
    for i in range(n):
        t = (
            Task(f"consume{i}")
            .add_input(temps[i], "a")
            .add_input(temps[(i + 5) % n], "b")
        )
        m.submit(t, duration=duration)
        tasks.append(t)
    return tasks


def _cached_at(events, stop_index):
    """Per-worker cached sets replayed from the log prefix [0, stop)."""
    held: dict[str, set] = {}
    for e in events[:stop_index]:
        if e.kind == "file_cached":
            held.setdefault(e.worker, set()).add(e.file)
        elif e.kind == "file_deleted":
            held.get(e.worker, set()).discard(e.file)
        elif e.kind == "worker_leave":
            held.pop(e.worker, None)
    return held


def _normalized(events):
    """Events with run-scoped identities aliased by appearance order."""
    files, tasks = {}, {}
    out = []
    for e in events:
        file = e.file
        if file is not None:
            file = files.setdefault(file, f"f{len(files)}")
        task = e.task
        if task is not None:
            task = tasks.setdefault(task, f"t{len(tasks)}")
        category = e.category
        if category in files:
            category = files[category]
        out.append((e.time, e.kind, e.worker, task, file, e.size, category))
    return out


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


def test_drain_migrates_then_departs():
    m = _build(3)
    tasks = _two_stage(m)
    SimFaultInjector(FaultPlan(seed=7).drain("w0", at=0.5), m)
    stats = m.run()
    assert all(t.state == TaskState.DONE for t in tasks)

    events = stats.log.events()
    kinds = [(e.kind, e.worker) for e in events if e.worker == "w0"]
    order = [k for k, _ in kinds if k in ("worker_drain", "worker_drained", "worker_leave")]
    # the full protocol, strictly ordered: announce, migrate, release
    assert order == ["worker_drain", "worker_drained", "worker_leave"]
    drained = stats.log.events("worker_drained")[0]
    assert drained.category is None, "no sole-holder object may be stranded"
    assert drained.size > 0, "the drain must have migrated bytes"
    # the drain forced no recovery work: this is the point of draining
    assert m.metrics.counter("recovery.regenerations").value == 0
    assert m.metrics.counter("elastic.drain_objects_stranded").value == 0
    assert not m.control.draining
    assert events[-1].kind == "workflow_done"


def test_drain_loses_no_sole_holder_objects():
    m = _build(3)
    tasks = _two_stage(m)
    SimFaultInjector(FaultPlan(seed=7).drain("w0", at=0.5), m)
    stats = m.run()
    assert all(t.state == TaskState.DONE for t in tasks)

    events = stats.log.events()
    leave_index = next(
        i for i, e in enumerate(events)
        if e.kind == "worker_leave" and e.worker == "w0"
    )
    held = _cached_at(events, leave_index)
    survivors = set().union(*(held.get(w, set()) for w in held if w != "w0"))
    # every object the departing worker still held at release time was
    # already backed on a survivor — zero replicas rode out with it
    orphaned = held.get("w0", set()) - survivors
    assert not orphaned, f"sole-holder objects lost to the drain: {orphaned}"


def test_join_mid_run_picks_up_work():
    m = _build(2)
    tasks = _two_stage(m, n=16)
    SimFaultInjector(
        FaultPlan(seed=7).join("w9", at=2.5, cores=4), m
    )
    stats = m.run()
    assert all(t.state == TaskState.DONE for t in tasks)
    joins = [e for e in stats.log.events("worker_join") if e.worker == "w9"]
    assert joins and joins[0].time >= 2.5
    # the late worker was actually scheduled onto, not just registered
    assert any(
        e.kind == "task_start" and e.worker == "w9" for e in stats.log.events()
    )


# ---------------------------------------------------------------------------
# byte-identical outputs vs a static cluster
# ---------------------------------------------------------------------------


def _stream(m, plan=None, seed=11):
    if plan is not None:
        SimFaultInjector(plan, m)
    return streaming_genome_workload(
        m, n_jobs=8, fanout=4, mean_interarrival=6.0, seed=seed
    )


def test_elastic_outputs_match_static():
    static = _stream(_build(3, seed=11))
    plan = (
        FaultPlan(seed=11)
        .join("w9", at=10.0)
        .drain("w0", at=25.0)
        .drain("w1", at=45.0)
    )
    elastic = _stream(_build(3, seed=11), plan=plan)
    assert all(t > 0 for t in elastic.job_completions)
    assert elastic.outputs == static.outputs


def test_autoscale_streaming_matches_static():
    static = _stream(_build(2, seed=11))

    m = _build(2, seed=11)
    driver = SimAutoscaleDriver(
        m, Autoscaler(min_workers=1, max_workers=8), interval=5.0
    )
    scaled = _stream(m)
    assert all(t > 0 for t in scaled.job_completions)
    assert driver.joins > 0, "streaming pressure must have grown the fleet"
    assert driver.drains > 0, "the idle tail must have shrunk it"
    ups = [e for e in scaled.stats.log.events("autoscale") if e.category == "up"]
    downs = [e for e in scaled.stats.log.events("autoscale") if e.category == "down"]
    assert sum(e.size for e in ups) == driver.joins
    assert sum(e.size for e in downs) == driver.drains
    # scale-downs were graceful: drains completed, nothing regenerated
    assert m.metrics.counter("elastic.drains_completed").value == driver.drains
    assert m.metrics.counter("recovery.regenerations").value == 0
    assert scaled.outputs == static.outputs


# ---------------------------------------------------------------------------
# per-seed determinism
# ---------------------------------------------------------------------------


def _elastic_run(seed):
    plan = (
        FaultPlan(seed=seed)
        .join("w9", at=8.0)
        .drain("w0", at=20.0)
        .crash("w1", at=30.0)
    )
    m = _build(3, seed=seed)
    result = _stream(m, plan=plan, seed=seed)
    return result.stats


def test_elastic_run_is_deterministic_for_a_seed():
    first = _elastic_run(13)
    second = _elastic_run(13)
    assert _normalized(first.log.events()) == _normalized(second.log.events())
    other = _elastic_run(14)
    assert _normalized(other.log.events()) != _normalized(first.log.events())


# ---------------------------------------------------------------------------
# chaos variants: membership churn racing failures
# ---------------------------------------------------------------------------


def test_crash_during_drain_still_converges():
    clean = _build(4, seed=7)
    clean_tasks = _two_stage(clean)
    clean.run()

    m = _build(4, seed=7)
    tasks = _two_stage(m)
    # the crash lands while the drain's migrations are in flight: the
    # graceful path must collapse into the crash path without wedging
    plan = FaultPlan(seed=7).drain("w0", at=0.5).crash("w0", at=1.0)
    SimFaultInjector(plan, m)
    stats = m.run()
    assert all(t.state == TaskState.DONE for t in tasks)
    assert all(t.state == TaskState.DONE for t in clean_tasks)

    events = stats.log.events()
    assert stats.log.events("worker_drain"), "the drain must have started"
    assert any(
        e.kind == "worker_leave" and e.worker == "w0" for e in events
    )
    assert not m.control.draining, "the crash must clear the draining set"
    assert events[-1].kind == "workflow_done"
    # identical results despite the mid-drain crash
    done = sorted(t.task_id for t in tasks if t.state == TaskState.DONE)
    clean_done = sorted(t.task_id for t in clean_tasks)
    assert len(done) == len(clean_done)


def test_join_then_immediate_crash_converges():
    m = _build(2, seed=7)
    tasks = _two_stage(m)
    plan = FaultPlan(seed=7).join("w9", at=2.0).crash("w9", at=3.0)
    SimFaultInjector(plan, m)
    stats = m.run()
    assert all(t.state == TaskState.DONE for t in tasks)
    events = stats.log.events()
    assert any(e.kind == "worker_join" and e.worker == "w9" for e in events)
    assert any(e.kind == "worker_leave" and e.worker == "w9" for e in events)
    assert events[-1].kind == "workflow_done"


def test_streaming_autoscale_under_hostile_plan():
    static = _stream(_build(4, seed=11))

    m = _build(4, seed=11)
    SimAutoscaleDriver(m, Autoscaler(min_workers=2, max_workers=8), interval=5.0)
    plan = (
        FaultPlan(seed=11)
        .crash("w0", at=15.0)
        .drain("w1", at=25.0)
        .fail_transfers("any", 0.05)
    )
    hostile = _stream(m, plan=plan)
    assert all(t > 0 for t in hostile.job_completions)

    events = hostile.stats.log.events()
    # recovery events pair up: the crash has a departure, every drain
    # ordered either completed or was overtaken by a crash of the same
    # worker — none left dangling at the end of the log
    crashes = [e for e in events if e.kind == "fault_injected" and e.category == "crash"]
    for e in crashes:
        assert any(
            r.kind == "worker_leave" and r.worker == e.worker and r.time >= e.time
            for r in events
        )
    started = [e.worker for e in hostile.stats.log.events("worker_drain")]
    for worker in started:
        assert any(
            e.kind == "worker_leave" and e.worker == worker for e in events
        )
    assert not m.control.draining
    # and through all of it, outputs byte-identical to the calm run
    assert hostile.outputs == static.outputs
