"""Simulated-runtime memoization: cross-run reuse and its soundness.

The chaos-grade contract under test (OxyMake's rule): a deterministic
resubmission is served from the memo store only while every recorded
output is still backed by a live replica; otherwise the entry is
observably invalidated (``memo_invalidated``) and the task actually
runs again — a stale binding is never served.
"""

import pytest

from repro.core.task import Task, TaskState
from repro.memo.store import MemoStore
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

MB = 1_000_000


def cluster_with(n=2, cores=4):
    c = SimCluster()
    c.add_workers(n, cores=cores)
    return c


def deterministic_batch(m, n=4, tenant="default"):
    """Submit n deterministic single-input tasks; returns the tasks."""
    data = m.declare_dataset("memo-input", 10 * MB, cache="worker")
    tasks = []
    for i in range(n):
        t = Task(f"process --shard {i}").set_deterministic().set_tenant(tenant)
        t.add_input(data, "in.dat")
        t.add_output(m.declare_temp(), "out.dat")
        m.submit(t, duration=5.0, output_sizes={"out.dat": 1 * MB})
        tasks.append(t)
    return tasks


def events(m, kind):
    return list(m.control.log.events(kind))


def test_warm_resubmission_hits_across_managers(tmp_path):
    cluster = cluster_with()
    store = MemoStore(tmp_path / "memo")

    cold = SimManager(cluster, memo_store=store)
    tasks = deterministic_batch(cold)
    stats = cold.run(finalize=False)  # keep worker caches alive
    assert all(t.state == TaskState.DONE for t in tasks)
    assert stats.makespan >= 5.0
    assert len(events(cold, "memo_miss")) == 4
    assert len(store) == 4

    warm = SimManager(cluster, memo_store=store)
    tasks2 = deterministic_batch(warm)
    stats2 = warm.run(finalize=False)
    assert all(t.state == TaskState.DONE for t in tasks2)
    assert stats2.makespan == 0.0  # nothing dispatched
    assert len(events(warm, "memo_hit")) == 4
    assert len(events(warm, "task_start")) == 0
    # hits recorded in the persistent index
    assert sum(e.hits for e in store.entries()) == 4
    # the outputs resolve to the same cache names both runs
    assert sorted(t.outputs[0][1].cache_name for t in tasks) == sorted(
        t.outputs[0][1].cache_name for t in tasks2
    )


def test_cross_tenant_hit(tmp_path):
    cluster = cluster_with()
    store = MemoStore(tmp_path / "memo")
    m = SimManager(cluster, memo_store=store)
    deterministic_batch(m, n=2, tenant="alice")
    m.run(finalize=False)
    deterministic_batch(m, n=2, tenant="bob")
    m.run(finalize=False)
    hits = events(m, "memo_hit")
    assert len(hits) == 2
    assert all(e.category == "bob" for e in hits)
    # provenance still names the tenant that paid for the execution
    assert {e.tenant for e in store.entries()} == {"alice"}


def test_opted_out_tenant_never_hits_or_records(tmp_path):
    cluster = cluster_with()
    store = MemoStore(tmp_path / "memo")
    m = SimManager(cluster, memo_store=store, memo_opt_out=["alice"])
    deterministic_batch(m, n=2, tenant="alice")
    m.run(finalize=False)
    assert len(store) == 0
    assert not events(m, "memo_hit") and not events(m, "memo_miss")
    deterministic_batch(m, n=2, tenant="alice")
    m.run(finalize=False)
    assert not events(m, "memo_hit")


def test_nondeterministic_task_not_memoized(tmp_path):
    cluster = cluster_with()
    store = MemoStore(tmp_path / "memo")
    m = SimManager(cluster, memo_store=store)
    data = m.declare_dataset("nd-in", MB, cache="worker")
    t = Task("date > out.dat").add_input(data, "in.dat")  # no set_deterministic
    t.add_output(m.declare_temp(), "out.dat")
    m.submit(t, duration=1.0, output_sizes={"out.dat": 10})
    m.run(finalize=False)
    assert len(store) == 0
    assert not events(m, "memo_miss")


def test_lost_replicas_invalidate_and_regenerate(tmp_path):
    # chaos case: the memo index survives, but the cluster holding the
    # replicas is gone (sim retains no payloads, so nothing backs the
    # entries) — the warm run must invalidate and actually re-run
    store = MemoStore(tmp_path / "memo")
    cold = SimManager(cluster_with(), memo_store=store)
    tasks = deterministic_batch(cold)
    cold.run(finalize=False)
    recorded = sorted(store.get(t.merkle).output_names()[0] for t in tasks)

    fresh_cluster = cluster_with()  # empty worker caches
    warm = SimManager(fresh_cluster, memo_store=store)
    tasks2 = deterministic_batch(warm)
    stats = warm.run(finalize=False)
    assert all(t.state == TaskState.DONE for t in tasks2)
    assert len(events(warm, "memo_invalidated")) == 4
    assert not events(warm, "memo_hit")
    assert len(events(warm, "task_start")) == 4  # really executed
    assert stats.makespan >= 5.0
    # re-recorded under the same deterministic names: a third run hits
    assert sorted(store.get(t.merkle).output_names()[0] for t in tasks2) == recorded
    third = SimManager(fresh_cluster, memo_store=store)
    tasks3 = deterministic_batch(third)
    third.run(finalize=False)
    assert len(events(third, "memo_hit")) == 4


def test_corrupt_entry_is_never_served(tmp_path):
    # seed a plausible-but-wrong binding: same merkle, but its recorded
    # output name has no replica anywhere — serving it would hand the
    # application a file that does not exist
    cluster = cluster_with()
    store = MemoStore(tmp_path / "memo")
    m = SimManager(cluster, memo_store=store)
    tasks = deterministic_batch(m, n=1)
    m.run(finalize=False)
    entry = store.get(tasks[0].merkle)
    entry.outputs[0].cache_name = "memo-md5-" + "0" * 32
    store.flush()

    m2 = SimManager(cluster, memo_store=store)
    tasks2 = deterministic_batch(m2, n=1)
    m2.run(finalize=False)
    assert tasks2[0].state == TaskState.DONE
    assert not events(m2, "memo_hit")
    assert len(events(m2, "task_start")) == 1  # executed, not served


def test_pre_referenced_temp_output_is_not_renamed(tmp_path):
    # a consumer submitted *before* its producer pins the temp's
    # placeholder name; renaming it for memoization would strand the
    # consumer waiting on a name never produced
    cluster = cluster_with()
    store = MemoStore(tmp_path / "memo")
    m = SimManager(cluster, memo_store=store)
    data = m.declare_dataset("chain-in", MB, cache="worker")
    mid = m.declare_temp()
    consumer = Task("stage2").add_input(mid, "mid.dat")
    consumer.add_output(m.declare_temp(), "final.dat")
    m.submit(consumer, duration=1.0, output_sizes={"final.dat": 10})
    producer = Task("stage1").set_deterministic().add_input(data, "in.dat")
    producer.add_output(mid, "mid.dat")
    m.submit(producer, duration=1.0, output_sizes={"mid.dat": 10})
    m.run(finalize=False)
    assert consumer.state == TaskState.DONE
    assert producer.state == TaskState.DONE
    assert mid.cache_name.startswith("temp-rnd-")  # rename was refused
