"""Behavioural tests of scheduling policies in the simulated runtime."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import EventLog, worker_busy
from repro.core.resources import Resources
from repro.core.task import Task, TaskState
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

MB = 1_000_000


def test_priority_tasks_dispatch_first():
    c = SimCluster()
    c.add_worker(cores=1, worker_id="only")
    m = SimManager(c)
    low = [Task(f"low{i}") for i in range(3)]
    high = Task("urgent").set_priority(10)
    for t in low:
        m.submit(t, duration=5.0)
    m.submit(high, duration=5.0)
    m.run(finalize=False)
    # despite being submitted last, the priority task ran first
    assert high.started_at < min(t.started_at for t in low)


def test_fifo_among_equal_priority():
    c = SimCluster()
    c.add_worker(cores=1)
    m = SimManager(c)
    tasks = [Task(f"t{i}") for i in range(4)]
    for t in tasks:
        m.submit(t, duration=2.0)
    m.run(finalize=False)
    starts = [t.started_at for t in tasks]
    assert starts == sorted(starts)


def test_gpu_tasks_only_on_gpu_workers():
    c = SimCluster()
    c.add_worker(cores=4, gpus=0, worker_id="cpu")
    c.add_worker(cores=4, gpus=2, worker_id="gpu")
    m = SimManager(c)
    t = Task("train").set_resources(Resources(cores=1, gpus=1))
    m.submit(t, duration=1.0)
    m.run(finalize=False)
    assert t.worker_id == "gpu"


def test_memory_packing_respected():
    c = SimCluster()
    c.add_worker(cores=8, memory=1000, worker_id="w")
    m = SimManager(c)
    tasks = [
        Task(f"m{i}").set_resources(Resources(cores=1, memory=400))
        for i in range(4)
    ]
    for t in tasks:
        m.submit(t, duration=10.0)
    stats = m.run(finalize=False)
    # only 2 fit concurrently (memory-bound despite 8 cores)
    assert stats.makespan == pytest.approx(20.0, abs=0.5)


def test_draining_is_respected_via_capacity():
    # a worker fully allocated by a library cannot take plain tasks
    c = SimCluster()
    c.add_worker(cores=1, worker_id="tiny")
    c.add_worker(cores=4, worker_id="big")
    m = SimManager(c)
    m.create_library("hog", resources=Resources(cores=1), startup_time=0.1)
    m.install_library("hog")
    t = Task("work")
    m.submit(t, duration=1.0)
    m.run(finalize=False)
    assert t.worker_id == "big"  # tiny is fully held by the library


# -- event-log properties --------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),  # start
            st.floats(min_value=0.01, max_value=50),  # duration
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_worker_busy_never_exceeds_connected(intervals):
    log = EventLog()
    log.emit(0.0, "worker_join", worker="w")
    horizon = 0.0
    for i, (start, duration) in enumerate(intervals):
        end = start + duration
        horizon = max(horizon, end)
        log.emit(start, "task_start", worker="w", task=f"t{i}")
        log.emit(end, "task_end", worker="w", task=f"t{i}")
    busy = worker_busy(log, horizon=horizon)["w"]
    assert busy.executing <= busy.connected + 1e-6
    assert busy.idle >= -1e-6
    assert busy.executing + busy.idle <= busy.connected + 1e-6


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 30), st.integers(1, 4), st.integers(1, 8))
def test_property_sim_conserves_tasks(n_tasks, n_workers, cores):
    """Every submitted task completes exactly once, regardless of shape."""
    c = SimCluster()
    c.add_workers(n_workers, cores=cores)
    m = SimManager(c)
    tasks = [Task(f"t{i}") for i in range(n_tasks)]
    for t in tasks:
        m.submit(t, duration=1.0)
    stats = m.run(finalize=False)
    assert stats.tasks_done == n_tasks
    assert all(t.state == TaskState.DONE for t in tasks)
    ends = stats.log.events("task_end")
    assert len(ends) == n_tasks


def test_heterogeneous_cluster_mixed_hardware():
    """The paper's testbed mixes 12-64 core nodes; packing must adapt."""
    c = SimCluster()
    sizes = [12, 16, 32, 64]
    for i, cores in enumerate(sizes):
        c.add_worker(cores=cores, memory=cores * 4000, worker_id=f"n{cores}")
    m = SimManager(c)
    tasks = [Task(f"t{i}") for i in range(sum(sizes))]
    for t in tasks:
        m.submit(t, duration=10.0)
    stats = m.run(finalize=False)
    # exactly one wave: total slots equal total tasks
    assert stats.makespan == pytest.approx(10.0, abs=0.3)
    by_worker = {}
    for t in tasks:
        by_worker[t.worker_id] = by_worker.get(t.worker_id, 0) + 1
    assert by_worker == {f"n{s}": s for s in sizes}


def test_wide_tasks_fill_remaining_capacity():
    c = SimCluster()
    c.add_worker(cores=16, worker_id="big")
    m = SimManager(c)
    wide = Task("wide").set_resources(Resources(cores=12))
    narrow = [Task(f"n{i}") for i in range(4)]
    m.submit(wide, duration=10.0)
    for t in narrow:
        m.submit(t, duration=10.0)
    stats = m.run(finalize=False)
    # 12 + 4x1 = 16 cores: everything runs in one wave
    assert stats.makespan == pytest.approx(10.0, abs=0.3)
