"""On-demand result fetches in the simulated runtime.

The sim mirrors the real manager's by-reference resolution path:
result bytes stay in worker caches until a fetch dereferences them,
concurrent fetches of one name coalesce into a single serve, a holder
dying mid-serve retries the remaining holders, and a name whose
replicas vanished regenerates through lineage before serving.
"""

from repro.core.task import Task, TaskState
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

MB = 1_000_000


def _produce(m, size=10 * MB, duration=1.0, cache_name=None):
    """Run one task producing a temp output; returns its cache name."""
    out = m.declare_temp()
    t = Task("produce").add_output(out, "out")
    m.submit(t, duration=duration, output_sizes={"out": size})
    m.run(finalize=False)
    assert t.state == TaskState.DONE
    return out.cache_name


def test_fetch_serves_from_a_holder_and_counts_fetch_bytes():
    c = SimCluster()
    c.add_worker(worker_id="w0")
    m = SimManager(c)
    name = _produce(m, size=10 * MB)

    served = []
    m.fetch_result(name, served.append)
    m.run(finalize=False)
    assert served == ["w0"]
    # accounted in its own category: a fetch is not a bring-back
    assert m.control.transfer_counts.get("fetch") == 1
    assert m.control.bytes_by_source.get("fetch") == 10 * MB
    assert not m.control.bytes_by_source.get("retrieve")
    ends = [e for e in m.log.events("transfer_end") if e.category == "@fetch"]
    assert [e.file for e in ends] == [name]


def test_concurrent_fetches_coalesce_into_one_serve():
    c = SimCluster()
    c.add_worker(worker_id="w0")
    m = SimManager(c)
    name = _produce(m, size=5 * MB)

    served = []
    m.fetch_result(name, lambda w: served.append(("first", w)))
    m.fetch_result(name, lambda w: served.append(("second", w)))
    m.run(finalize=False)
    # both waiters settle, but only one transfer moved the bytes
    assert served == [("first", "w0"), ("second", "w0")]
    assert m.control.transfer_counts.get("fetch") == 1


def test_fetch_retries_surviving_holder_when_the_asked_worker_dies():
    c = SimCluster()
    c.add_worker(worker_id="w0")
    c.add_worker(worker_id="w1")
    m = SimManager(c, temp_replica_count=2)
    name = _produce(m, size=10 * MB)
    m.control.pump()
    m.sim.run()  # drain the replication transfer
    assert set(m.replicas.locate(name)) == {"w0", "w1"}

    served = []
    m.fetch_result(name, served.append)  # asks w0 (deterministic min)
    c.remove_worker("w0", at=m.sim.now)  # dies mid-serve
    m.run(finalize=False)
    assert served == ["w1"]
    retried = m.log.events("fetch_retried")
    assert [(e.worker, e.file, e.category) for e in retried] == [
        ("w0", name, "worker_lost")
    ]


def test_fetch_regenerates_vanished_results_through_lineage():
    c = SimCluster()
    c.add_worker(worker_id="w0")
    c.add_worker(worker_id="w1")
    m = SimManager(c)
    name = _produce(m, size=8 * MB)

    # every replica vanishes with its holder; lineage still knows how
    # to make the bytes again
    holder = next(iter(m.replicas.locate(name)))
    c.remove_worker(holder, at=m.sim.now)
    m.sim.run()
    assert not m.replicas.locate(name)

    served = []
    m.fetch_result(name, served.append)
    m.run(finalize=False)
    assert served and served[0] is not None
    assert m.log.events("file_regenerated")
    assert m.control.transfer_counts.get("fetch") == 1


def test_fetch_of_an_unservable_name_settles_none():
    c = SimCluster()
    c.add_worker(worker_id="w0")
    m = SimManager(c)
    # declared but never produced and not regenerable: no producer task
    f = m.declare_temp()

    served = ["sentinel"]
    m.fetch_result(f.cache_name, lambda w: served.__setitem__(0, w))
    m.run(finalize=False)
    assert served == [None]
    assert not m.control.transfer_counts.get("fetch")
