"""Chaos soak for manager crash/recovery in the simulated runtime.

A seeded :class:`FaultPlan` kills the *manager* mid-run.  The next
manager life over the same journal directory must restore the control
plane, re-adopt the replicas the (surviving) simulated workers still
hold, finish the workflow with outputs identical to an uninterrupted
run, and never re-execute a task whose outputs survived — all asserted
from the shared transaction log, which carries both lives as segments
of one file.
"""

from repro.core.journal import ControlPlaneJournal
from repro.core.task import Task, TaskState
from repro.faults import FaultPlan, SimFaultInjector
from repro.observe.txnlog import read_transactions
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

MB = 1_000_000
N_WORKERS = 3
N_STAGE = 6


def _cluster():
    cluster = SimCluster()
    for i in range(N_WORKERS):
        cluster.add_worker(cores=4, worker_id=f"w{i}")
    return cluster


def _build_workload(m):
    """Two-stage DAG: producers feed pairwise-joining consumers."""
    shared = m.declare_dataset("shared", MB)
    temps, tasks = [], []
    for i in range(N_STAGE):
        temp = m.declare_temp()
        # a per-producer dataset: each declare charges the tenant's byte
        # ledger, so the journal accumulates incremental tenant_bytes
        # records that compaction collapses to one total
        own = m.declare_dataset(f"in{i}", MB // 2)
        t = (
            Task(f"produce{i}")
            .add_input(shared, "d")
            .add_input(own, "own")
            .add_output(temp, "out")
        )
        # staggered durations: the after-tasks crash below lands while
        # later producers are genuinely in flight
        m.submit(t, duration=1.0 + 0.5 * i, output_sizes={"out": MB})
        temps.append(temp)
        tasks.append(t)
    for i in range(N_STAGE):
        t = (
            Task(f"consume{i}")
            .add_input(temps[i], "a")
            .add_input(temps[(i + 2) % N_STAGE], "b")
        )
        m.submit(t, duration=1.0)
        tasks.append(t)
    return tasks


def _fingerprint(m):
    """The workflow's observable outcome, independent of run-salted
    cache names and task ids: per command, terminal state and the
    sizes of every output object."""
    out = []
    for t in m.control.tasks.values():
        sizes = tuple(
            sorted(m.control.sizes.get(f.cache_name, 0) for _, f in t.outputs)
        )
        out.append((t.command, t.state.name, sizes))
    return sorted(out)


def _run_clean(seed):
    m = SimManager(_cluster(), seed=seed)
    tasks = _build_workload(m)
    m.run()
    assert all(t.state == TaskState.DONE for t in tasks)
    return _fingerprint(m)


def _run_with_crash(seed, tmp_path):
    """Life 1 dies mid-run; life 2 recovers over the same journal."""
    journal_dir = str(tmp_path / "journal")
    txn = str(tmp_path / "txn.jsonl")
    cluster = _cluster()
    # tight snapshot cadence so compactions actually happen within this
    # small workload and the replay-cost bound below is exercised
    m1 = SimManager(
        cluster, seed=seed, journal_dir=journal_dir, txn_log_path=txn,
        journal_snapshot_every=8,
    )
    _build_workload(m1)
    plan = FaultPlan(seed=seed).crash_manager(after_tasks=3)
    SimFaultInjector(plan, m1)
    m1.run()  # drains once the crash mutes every callback
    assert m1._crashed
    done_before = sum(1 for t in m1.control.tasks.values() if t.is_done)
    assert 0 < done_before < 2 * N_STAGE  # genuinely mid-run

    m2 = SimManager(
        cluster, seed=seed, journal_dir=journal_dir, txn_log_path=txn,
        journal_snapshot_every=8, recovery_grace=5.0,
    )
    assert m2.recovered
    m2.run()
    return m1, m2, txn


def test_crashed_run_converges_to_the_uninterrupted_outcome(tmp_path):
    clean = _run_clean(11)
    _m1, m2, _txn = _run_with_crash(11, tmp_path)
    assert all(t.state == TaskState.DONE for t in m2.control.tasks.values())
    # same commands, same terminal states, same output object sizes —
    # the sim's notion of byte-identical outputs
    assert _fingerprint(m2) == clean


def test_survived_tasks_are_not_reexecuted(tmp_path):
    _m1, m2, txn = _run_with_crash(13, tmp_path)

    header, events = read_transactions(txn)
    assert header["segments"] == 2
    restart_at = next(
        i for i, e in enumerate(events) if e.kind == "manager_restart"
    )
    pre, post = events[:restart_at], events[restart_at:]

    # tasks that completed before the crash keep their outputs on the
    # surviving workers: the second life must not start them again
    survived = {
        e.task for e in pre if e.kind == "task_end" and e.category != "library"
    }
    restarted = {e.task for e in post if e.kind == "task_start"}
    assert survived and not (survived & restarted)
    # in-flight work died with the manager and does re-run
    started_pre = {
        e.task for e in pre if e.kind == "task_start" and e.category != "library"
    }
    assert (started_pre - survived) & restarted

    # the recovery lifecycle is first-class in the same log
    assert any(e.kind == "recovery_complete" for e in post)
    rejoined = [e for e in post if e.kind == "worker_rejoined"]
    assert len(rejoined) == N_WORKERS
    readopted = [e for e in post if e.kind == "replica_readopted"]
    assert readopted


def test_replay_cost_is_bounded_by_the_snapshot(tmp_path):
    _m1, m2, _txn = _run_with_crash(17, tmp_path)
    # recovery itself is redundant by design: m2's worker adoption
    # re-records replica grants the journal already held from life 1,
    # and the tight snapshot cadence compacts the duplicates away — so
    # a replay taken now reads strictly fewer records than were ever
    # appended, while losing no facts
    m2.journal.close()
    stats = ControlPlaneJournal(str(tmp_path / "journal")).last_replay_stats
    assert stats.snapshot_records > 0
    assert stats.replayed_records < stats.lifetime_records


def test_crash_recovery_is_deterministic_for_a_seed(tmp_path):
    _, m2a, _ = _run_with_crash(19, tmp_path / "a")
    _, m2b, _ = _run_with_crash(19, tmp_path / "b")
    assert _fingerprint(m2a) == _fingerprint(m2b)


def test_bystander_rejoin_does_not_end_the_grace_window_early(tmp_path):
    """A fresh empty worker registering first must not trigger
    regeneration of outputs whose holder is still reconnecting.

    Worker ids are minted per manager life, so the recovery window
    cannot match rejoiners to the journal's expected holders by id —
    it must wait until the awaited outputs are actually re-backed (or
    the grace deadline passes).
    """
    from repro.core.files import CacheLevel

    journal_dir = str(tmp_path / "journal")
    c1 = SimCluster()
    c1.add_worker(worker_id="w0")
    m1 = SimManager(c1, journal_dir=journal_dir)
    out = m1.declare_temp()
    t = Task("produce").add_output(out, "out")
    m1.submit(t, duration=1.0, output_sizes={"out": MB})
    m1.run(finalize=False)
    assert t.state == TaskState.DONE
    name = out.cache_name
    m1.crash()

    # life 2: an empty bystander connects immediately; the holder's
    # registration (same disk, new identity) arrives a moment later,
    # well inside the grace window
    c2 = SimCluster()
    c2.add_worker(worker_id="fresh0")
    m2 = SimManager(c2, journal_dir=journal_dir, recovery_grace=5.0)
    assert m2.recovered
    holder = c2.add_worker(worker_id="late0", at=1.0)
    holder.insert(name, MB, CacheLevel.WORKFLOW, 0.0)
    m2.sim.run()  # no workflow outstanding: drain the join events

    # the output was re-adopted from the late holder, not re-executed
    assert any(
        e.file == name and e.worker == "late0"
        for e in m2.log.events("replica_readopted")
    )
    assert not list(m2.log.events("file_regenerated"))
    assert set(m2.replicas.locate(name)) == {"late0"}


def test_cleanly_drained_worker_leaves_the_rejoin_expectation(tmp_path):
    """Regression for a worker-set-fixed-after-start assumption: a
    worker that *gracefully drained* before the manager crash must not
    linger in the journal's rejoin expectation set.  Its replicas were
    migrated to survivors while it departed, so recovery must neither
    wait out the grace window for it nor regenerate what it once held.
    """
    journal_dir = str(tmp_path / "journal")
    cluster = _cluster()
    m1 = SimManager(cluster, seed=23, journal_dir=journal_dir)
    tasks = _build_workload(m1)
    SimFaultInjector(FaultPlan(seed=23).drain("w0", at=0.5), m1)
    m1.run(finalize=False)
    assert all(t.state == TaskState.DONE for t in tasks)
    assert any(e.kind == "worker_drained" for e in m1.log.events())
    # the journal derives rejoin expectations from replica hints, and
    # the drain's departure pruned every hint naming w0
    assert "w0" not in m1.journal.known_workers()
    assert m1.journal.known_workers() <= {"w1", "w2"}
    m1.crash()

    # life 2 over the same journal: only the survivors come back, and
    # recovery settles without regenerating anything the drain migrated
    m2 = SimManager(
        cluster, seed=23, journal_dir=journal_dir, recovery_grace=5.0
    )
    assert m2.recovered
    m2.run()
    assert not list(m2.log.events("file_regenerated"))
    rejoined = {e.worker for e in m2.log.events("worker_rejoined")}
    assert "w0" not in rejoined
