"""Tests for the simulated-experiment CLI."""

import pytest

from repro.sim import cli


def run_cli(capsys, *argv):
    code = cli.main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_fig9_small(capsys):
    code, out = run_cli(capsys, "fig9", "--workers", "5", "--tasks", "40")
    assert code == 0
    assert "cold:" in out and "hot:" in out
    assert "worker view" in out


def test_fig10_small(capsys):
    code, out = run_cli(capsys, "fig10", "--tasks", "120")
    assert code == 0
    assert "independent:" in out
    assert "unpacks" in out


def test_fig11_modes(capsys):
    code, out = run_cli(
        capsys, "fig11", "--mode", "managed", "--limit", "3", "--workers", "40"
    )
    assert code == 0
    assert "mode=managed limit=3" in out
    assert "p50=" in out


def test_bgd_small(capsys):
    code, out = run_cli(capsys, "bgd", "--calls", "60", "--workers", "10")
    assert code == 0
    assert "libraries ready" in out
    assert "task view" in out


def test_topeft_both_modes(capsys):
    code, out = run_cli(capsys, "topeft", "--chunks", "32")
    assert code == 0
    assert "in-cluster temps" in out
    code, out = run_cli(capsys, "topeft", "--chunks", "32", "--shared-storage")
    assert "shared storage" in out
    assert "GB via manager" in out


def test_unknown_command_rejected(capsys):
    with pytest.raises(SystemExit):
        cli.main(["nonsense"])
