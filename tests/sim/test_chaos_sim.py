"""Chaos soak for the simulated runtime.

A hostile :class:`FaultPlan` — half the cluster killed, a throttled
link, and probabilistic transfer failure/corruption — is driven against
a two-stage DAG.  The workflow must still complete, every injected
fault must be answered by a recovery in the transaction log, and the
whole run must be bit-for-bit deterministic for a fixed seed.
"""

from repro.core.task import Task, TaskState
from repro.faults import FaultPlan, SimFaultInjector
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

MB = 1_000_000
N_WORKERS = 6
N_STAGE = 12


def _hostile_plan(seed):
    return (
        FaultPlan(seed=seed)
        .crash("w0", at=2.0)          # timed abrupt departure
        .crash("w1", after_tasks=2)   # dies mid-way through its 2nd task
        .disconnect("w2", at=3.0)     # control connection severed
        .degrade_link("w3", at=1.0, factor=0.25)
        .fail_transfers("any", 0.08)
        .corrupt_transfers("peer", 0.10)
    )


def _run_chaos(seed, plan=None):
    """Build the cluster + DAG, inject the plan, run to completion."""
    cluster = SimCluster()
    for i in range(N_WORKERS):
        cluster.add_worker(cores=4, worker_id=f"w{i}")
    m = SimManager(cluster, seed=seed, max_task_retries=10)
    if plan is not None:
        SimFaultInjector(plan, m)
    shared = m.declare_dataset("shared", MB)
    temps, tasks = [], []
    for i in range(N_STAGE):
        temp = m.declare_temp()
        t = Task(f"produce{i}").add_input(shared, "d").add_output(temp, "out")
        m.submit(t, duration=1.0, output_sizes={"out": MB})
        temps.append(temp)
        tasks.append(t)
    for i in range(N_STAGE):
        # each consumer joins two intermediates, forcing peer traffic
        t = (
            Task(f"consume{i}")
            .add_input(temps[i], "a")
            .add_input(temps[(i + 5) % N_STAGE], "b")
        )
        m.submit(t, duration=1.0)
        tasks.append(t)
    stats = m.run()
    return m, stats, tasks


def test_chaos_soak_completes_and_recovers():
    plan = _hostile_plan(42)
    m, stats, tasks = _run_chaos(42, plan)
    assert all(t.state == TaskState.DONE for t in tasks)

    events = stats.log.events()
    faults = stats.log.events("fault_injected")
    by_category = {}
    for e in faults:
        by_category.setdefault(e.category, []).append(e)

    # every scheduled departure fired: 3 of 6 workers (>= 20%) died
    killed = {e.worker for e in by_category.get("crash", [])} | {
        e.worker for e in by_category.get("disconnect", [])
    }
    assert killed == {"w0", "w1", "w2"}
    assert [e.worker for e in by_category["link_degrade"]] == ["w3"]
    # probabilistic faults fired too (seed 42 is known-hostile)
    assert by_category.get("transfer_fail") or by_category.get("transfer_corrupt")

    # pairing: every fault is answered in the same log
    for e in faults:
        if e.category in ("crash", "disconnect"):
            assert any(
                r.kind == "worker_leave" and r.worker == e.worker
                and r.time >= e.time
                for r in events
            ), f"no departure recorded for {e}"
        elif e.category in ("transfer_fail", "transfer_corrupt"):
            assert any(
                r.kind == "transfer_failed" and r.file == e.file
                and r.worker == e.worker and r.time >= e.time
                for r in events
            ), f"no failure accounting for {e}"

    # recovery machinery engaged and closed the loop
    assert m.metrics.counter("faults.injected").value == len(faults)
    assert stats.log.events("task_requeued")
    assert m.metrics.counter("transfers.failed").value >= len(
        by_category.get("transfer_fail", [])
    )
    # losing workers mid-DAG forces lineage regeneration or refetch;
    # either way the terminal state is every task DONE with no survivor
    # of the plan left blocked
    assert events[-1].kind == "workflow_done"


def test_chaos_makespan_costs_more_than_fault_free():
    _, clean, tasks = _run_chaos(42, plan=None)
    assert all(t.state == TaskState.DONE for t in tasks)
    _, chaotic, tasks = _run_chaos(42, _hostile_plan(42))
    assert all(t.state == TaskState.DONE for t in tasks)
    assert chaotic.makespan > clean.makespan
    assert not clean.log.events("fault_injected")


def _normalized(events):
    """Events with run-scoped cache-name nonces aliased by appearance.

    Declared files get a fresh random nonce and tasks a process-global
    counter every run (they are identities, not content); everything
    else — times, kinds, workers, sizes, categories — must replay
    exactly.
    """
    files, tasks = {}, {}
    out = []
    for e in events:
        file = e.file
        if file is not None:
            file = files.setdefault(file, f"f{len(files)}")
        task = e.task
        if task is not None:
            task = tasks.setdefault(task, f"t{len(tasks)}")
        category = e.category
        if category in files:
            category = files[category]
        out.append((e.time, e.kind, e.worker, task, file, e.size, category))
    return out


def test_chaos_run_is_deterministic_for_a_seed():
    _, first, _ = _run_chaos(7, _hostile_plan(7))
    _, second, _ = _run_chaos(7, _hostile_plan(7))
    # the full event sequence — times, workers, files, sizes — replays
    assert _normalized(first.log.events()) == _normalized(second.log.events())
    # a different seed shifts the probabilistic faults
    _, other, _ = _run_chaos(8, _hostile_plan(8))
    assert _normalized(other.log.events()) != _normalized(first.log.events())
