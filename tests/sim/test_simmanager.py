"""Integration tests for the simulated TaskVine runtime."""

import pytest

from repro.core.events import task_rows, worker_busy
from repro.core.library import FunctionCall
from repro.core.resources import Resources
from repro.core.task import Task, TaskState
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

MB = 1_000_000


def cluster_with(n=4, cores=4, **kw):
    c = SimCluster()
    c.add_workers(n, cores=cores, **kw)
    return c


def test_single_task_runs_to_completion():
    c = cluster_with(1)
    m = SimManager(c)
    data = m.declare_dataset("input", 10 * MB, cache="workflow")
    t = Task("consume input").add_input(data, "input")
    m.submit(t, duration=5.0)
    stats = m.run()
    assert t.state == TaskState.DONE
    assert stats.tasks_done == 1
    # 10 MB over 10GbE ~ 8ms, plus 5 s execution
    assert 5.0 < stats.makespan < 5.5


def test_tasks_pack_by_cores():
    c = cluster_with(1, cores=4)
    m = SimManager(c)
    tasks = [Task("sleep") for _ in range(8)]
    for t in tasks:
        m.submit(t, duration=10.0)
    stats = m.run()
    # 8 single-core tasks on one 4-core worker: two waves
    assert stats.makespan == pytest.approx(20.0, abs=0.2)


def test_multicore_task_excludes_small_workers():
    c = SimCluster()
    c.add_worker(cores=2, worker_id="small")
    c.add_worker(cores=8, worker_id="big")
    m = SimManager(c)
    t = Task("wide").set_resources(Resources(cores=6))
    m.submit(t, duration=1.0)
    m.run()
    assert t.worker_id == "big"


def test_shared_input_transferred_once_per_worker():
    c = cluster_with(2)
    m = SimManager(c)
    data = m.declare_dataset("shared", 100 * MB)
    tasks = [Task("use").add_input(data, "d") for _ in range(8)]
    for t in tasks:
        m.submit(t, duration=1.0)
    stats = m.run()
    total_fetches = stats.transfer_counts.get("manager", 0) + stats.transfer_counts.get("peer", 0)
    assert total_fetches == 2  # once per worker, shared by 4 tasks each


def test_locality_placement_reuses_cached_worker():
    c = cluster_with(3)
    m = SimManager(c)
    data = m.declare_dataset("big", 500 * MB)
    t1 = Task("first").add_input(data, "d")
    m.submit(t1, duration=1.0)
    m.run(finalize=False)
    t2 = Task("second").add_input(data, "d")
    m.submit(t2, duration=1.0)
    m.run(finalize=False)
    assert t2.worker_id == t1.worker_id


def test_peer_transfer_preferred_over_manager():
    c = cluster_with(2)
    m = SimManager(c)
    data = m.declare_dataset("d", 50 * MB)
    t1 = Task("a").add_input(data, "d")
    m.submit(t1, duration=1.0)
    m.run(finalize=False)
    # force the second task onto the other worker by filling the first
    filler = Task("filler").set_resources(Resources(cores=4))
    t2 = Task("b").add_input(data, "d")
    m.submit(filler, duration=30.0)
    m.submit(t2, duration=1.0)
    stats = m.run()
    assert stats.transfer_counts.get("peer", 0) >= 1


def test_cold_then_hot_cache(tmp_path):
    """Worker-lifetime objects persist across workflow runs (Fig 9)."""
    c = cluster_with(4)
    m1 = SimManager(c, seed=1)
    url = m1.declare_url("https://archive/blast.tar.gz", 600 * MB, cache="worker")
    sw = m1.declare_untar(url, unpacked_size=1500 * MB, stage_time=20.0, cache="worker")
    for _ in range(8):
        m1.submit(Task("blast").add_input(sw, "blast"), duration=10.0)
    cold = m1.run()

    m2 = SimManager(c, seed=2)
    url2 = m2.declare_url("https://archive/blast.tar.gz", 600 * MB, cache="worker")
    sw2 = m2.declare_untar(url2, unpacked_size=1500 * MB, stage_time=20.0, cache="worker")
    assert sw2.cache_name == sw.cache_name  # content-addressable across runs
    for _ in range(8):
        m2.submit(Task("blast").add_input(sw2, "blast"), duration=10.0)
    hot = m2.run()
    assert hot.makespan < cold.makespan / 2
    assert hot.transfer_counts.get("url", 0) == 0
    assert hot.transfer_counts.get("stage", 0) == 0


def test_workflow_level_files_collected_worker_level_kept():
    c = cluster_with(1)
    m = SimManager(c)
    keep = m.declare_dataset("keep", MB, cache="worker")
    drop = m.declare_dataset("drop", MB, cache="workflow")
    t = Task("x").add_input(keep, "k").add_input(drop, "d")
    m.submit(t, duration=1.0)
    m.run()  # finalize=True
    worker = next(iter(c.workers.values()))
    assert worker.has(keep.cache_name)
    assert not worker.has(drop.cache_name)


def test_task_level_input_deleted_after_use():
    c = cluster_with(1)
    m = SimManager(c)
    query = m.declare_dataset("query", MB, cache="task")
    t = Task("q").add_input(query, "q")
    m.submit(t, duration=1.0)
    m.run(finalize=False)
    worker = next(iter(c.workers.values()))
    assert not worker.has(query.cache_name)


def test_temp_output_consumed_by_downstream_task():
    c = cluster_with(2)
    m = SimManager(c)
    temp = m.declare_temp()
    producer = Task("produce").add_output(temp, "out")
    consumer = Task("consume").add_input(temp, "in")
    m.submit(producer, duration=2.0, output_sizes={"out": 30 * MB})
    m.submit(consumer, duration=1.0)
    stats = m.run()
    assert producer.state == consumer.state == TaskState.DONE
    assert consumer.started_at >= producer.finished_at
    assert stats.makespan >= 3.0


def test_bring_back_outputs_delay_completion():
    c = cluster_with(1)
    m = SimManager(c)
    out = m.declare_output(size=0, bring_back=True)
    t = Task("emit").add_output(out, "o")
    # 1.25 GB over 10 GbE back to the manager ~ 1 s
    m.submit(t, duration=1.0, output_sizes={"o": 1_250 * MB})
    stats = m.run()
    assert stats.makespan == pytest.approx(2.0, abs=0.1)
    assert stats.transfer_counts.get("retrieve", 0) == 1


def test_minitask_staged_once_and_shared():
    c = cluster_with(1)
    m = SimManager(c)
    tar = m.declare_dataset("env.tar", 100 * MB, cache="workflow")
    env = m.declare_untar(tar, unpacked_size=300 * MB, stage_time=5.0)
    for _ in range(4):
        m.submit(Task("use env").add_input(env, "env"), duration=1.0)
    stats = m.run()
    assert stats.transfer_counts.get("stage", 0) == 1
    assert stats.transfer_counts.get("manager", 0) == 1  # the tarball


def test_minitask_staging_time_observed():
    c = cluster_with(1)
    m = SimManager(c)
    tar = m.declare_dataset("env.tar", 1, cache="workflow")
    env = m.declare_untar(tar, unpacked_size=1, stage_time=7.0)
    t = Task("use").add_input(env, "env")
    m.submit(t, duration=1.0)
    stats = m.run()
    assert stats.makespan == pytest.approx(8.0, abs=0.2)


def test_eviction_frees_space_for_new_objects():
    c = SimCluster()
    c.add_worker(cores=4, disk_capacity=250 * MB)
    m = SimManager(c)
    a = m.declare_dataset("a", 100 * MB)
    b = m.declare_dataset("b", 100 * MB)
    d = m.declare_dataset("d", 100 * MB)
    # 4-core tasks serialize, so earlier inputs become unpinned and evictable
    wide = Resources(cores=4)
    m.submit(Task("1").set_resources(wide).add_input(a, "a"), duration=1.0)
    m.submit(Task("2").set_resources(wide).add_input(b, "b"), duration=1.0)
    m.submit(Task("3").set_resources(wide).add_input(d, "d"), duration=1.0)
    stats = m.run(finalize=False)
    worker = next(iter(c.workers.values()))
    assert stats.evictions >= 1
    assert worker.cache_bytes() <= 250 * MB


def test_worker_joining_mid_run_is_used():
    c = SimCluster()
    c.add_worker(cores=1, worker_id="early")
    c.add_worker(cores=4, worker_id="late", at=50.0)
    m = SimManager(c)
    tasks = [Task(f"t{i}") for i in range(10)]
    for t in tasks:
        m.submit(t, duration=30.0)
    m.run()
    assert any(t.worker_id == "late" for t in tasks)


def test_serverless_library_and_function_calls():
    c = cluster_with(2, cores=4)
    m = SimManager(c)
    env = m.declare_dataset("lib-env", 80 * MB, cache="workflow")
    m.create_library(
        "opt", env_files=[env], resources=Resources(cores=1),
        startup_time=10.0, slots=2,
    )
    m.install_library("opt")
    calls = [FunctionCall("opt", "gradient", i) for i in range(8)]
    for fc in calls:
        m.submit(fc, duration=5.0)
    stats = m.run()
    assert all(fc.state == TaskState.DONE for fc in calls)
    # library startup gates the first calls
    first_start = min(fc.started_at for fc in calls)
    assert first_start >= 10.0
    # 2 workers x 2 slots = 4 concurrent calls, 8 calls => 2 waves of 5 s
    assert stats.makespan == pytest.approx(first_start + 10.0, abs=1.5)
    # library instances appear in the task view with category "library"
    rows = task_rows(stats.log)
    assert sum(1 for r in rows if r.category == "library") == 2


def test_function_call_waits_for_library():
    c = cluster_with(1)
    m = SimManager(c)
    m.create_library("l", startup_time=5.0, slots=1)
    m.install_library("l")
    fc = FunctionCall("l", "f")
    m.submit(fc, duration=1.0)
    m.run()
    assert fc.started_at >= 5.0


def test_worker_view_reports_transfer_and_execution_time():
    c = cluster_with(1)
    m = SimManager(c)
    # 1.25 GB at 10 GbE = 1 s transfer
    data = m.declare_dataset("big", 1_250 * MB)
    t = Task("use").add_input(data, "d")
    m.submit(t, duration=3.0)
    stats = m.run()
    busy = worker_busy(stats.log)
    w = busy[t.worker_id]
    assert w.transferring == pytest.approx(1.0, abs=0.1)
    assert w.executing == pytest.approx(3.0, abs=0.1)


def test_submit_twice_rejected():
    c = cluster_with(1)
    m = SimManager(c)
    t = Task("x")
    m.submit(t, duration=1.0)
    with pytest.raises(RuntimeError):
        m.submit(t, duration=1.0)


def test_undeclared_input_rejected():
    from repro.core.files import BufferFile

    c = cluster_with(1)
    m = SimManager(c)
    foreign = BufferFile(b"x")
    with pytest.raises(RuntimeError):
        m.submit(Task("x").add_input(foreign, "f"), duration=1.0)
