"""Tests for dynamic worker departure and replication (paper §2.2)."""

import pytest

from repro.core.task import Task, TaskState
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

MB = 1_000_000


def test_departing_worker_tasks_requeued():
    c = SimCluster()
    c.add_worker(cores=4, worker_id="victim")
    c.add_worker(cores=4, worker_id="survivor")
    m = SimManager(c)
    tasks = [Task(f"t{i}") for i in range(8)]
    for t in tasks:
        m.submit(t, duration=20.0)
    c.remove_worker("victim", at=5.0)
    stats = m.run()
    assert all(t.state == TaskState.DONE for t in tasks)
    assert m.tasks_requeued >= 1
    # everything ultimately ran on the survivor
    assert all(t.worker_id == "survivor" for t in tasks)
    leaves = stats.log.events("worker_leave")
    assert len(leaves) == 1 and leaves[0].worker == "victim"


def test_departure_drops_replicas():
    c = SimCluster()
    c.add_worker(cores=4, worker_id="w1")
    m = SimManager(c)
    data = m.declare_dataset("d", 10 * MB)
    t = Task("use").add_input(data, "d")
    m.submit(t, duration=1.0)
    m.run(finalize=False)
    assert m.replicas.has_replica(data.cache_name, "w1")
    c.add_worker(cores=4, worker_id="w2")
    c.remove_worker("w1", at=m.sim.now)
    m.sim.run(until=m.sim.now + 1)
    assert not m.replicas.has_replica(data.cache_name, "w1")


def test_lost_dataset_input_refetched_from_source():
    """External inputs survive worker loss: they are refetched."""
    c = SimCluster()
    c.add_worker(cores=4, worker_id="w1")
    c.add_worker(cores=4, worker_id="w2")
    m = SimManager(c)
    data = m.declare_dataset("d", 10 * MB)
    first = Task("a").add_input(data, "d")
    m.submit(first, duration=2.0)
    m.run(finalize=False)
    c.remove_worker(first.worker_id, at=m.sim.now)
    later = Task("b").add_input(data, "d")
    m.submit(later, duration=1.0)
    m.run()
    assert later.state == TaskState.DONE


def test_replication_keeps_temp_alive_across_loss():
    """With temp_replica_count=2, a produced file survives one departure."""
    c = SimCluster()
    for i in range(3):
        c.add_worker(cores=4, worker_id=f"w{i}")
    m = SimManager(c, temp_replica_count=2)
    temp = m.declare_temp()
    producer = Task("produce").add_output(temp, "out")
    m.submit(producer, duration=1.0, output_sizes={"out": 5 * MB})
    m.run(finalize=False)
    # replication is asynchronous: drain the in-flight copy
    m.sim.run(until=m.sim.now + 5.0)
    assert m.replicas.replica_count(temp.cache_name) == 2
    # kill the producer's worker; the surviving replica serves consumers
    consumer = Task("consume").add_input(temp, "in")
    m.submit(consumer, duration=1.0)
    c.remove_worker(producer.worker_id, at=m.sim.now)
    m.run(finalize=False)
    assert consumer.state == TaskState.DONE
    # re-replication restored the target count on the remaining workers
    assert m.replicas.replica_count(temp.cache_name) >= 1


def test_no_replication_by_default():
    c = SimCluster()
    c.add_workers(3, cores=4)
    m = SimManager(c)  # temp_replica_count=1
    temp = m.declare_temp()
    producer = Task("produce").add_output(temp, "out")
    m.submit(producer, duration=1.0, output_sizes={"out": 5 * MB})
    m.run(finalize=False)
    assert m.replicas.replica_count(temp.cache_name) == 1


def test_repeated_losses_exhaust_retries():
    c = SimCluster()
    for i in range(5):
        c.add_worker(cores=4, worker_id=f"w{i}")
    m = SimManager(c, max_task_retries=1)
    t = Task("long")
    m.submit(t, duration=100.0)
    # first loss: requeued; second loss: gives up
    c.remove_worker("w0", at=10.0)
    c.remove_worker("w1", at=20.0)
    c.remove_worker("w2", at=30.0)
    with pytest.raises(RuntimeError, match="giving up"):
        m.run(until=200.0)


def test_library_redeployed_is_not_ready_on_departed_worker():
    from repro.core.library import FunctionCall

    c = SimCluster()
    c.add_worker(cores=4, worker_id="w1")
    c.add_worker(cores=4, worker_id="w2")
    m = SimManager(c)
    m.create_library("lib", startup_time=2.0, slots=4)
    m.install_library("lib")
    calls = [FunctionCall("lib", "f") for _ in range(6)]
    for fc in calls:
        m.submit(fc, duration=10.0)
    c.remove_worker("w1", at=5.0)
    m.run()
    assert all(fc.state == TaskState.DONE for fc in calls)
    assert all(fc.worker_id == "w2" for fc in calls if fc.retries_used > 0)


def test_lost_temp_regenerated_from_lineage():
    """A temp with no surviving replica is recreated by re-running its
    producer (lineage recovery), transparently to the consumer."""
    c = SimCluster()
    c.add_worker(cores=4, worker_id="w1")
    c.add_worker(cores=4, worker_id="w2")
    m = SimManager(c)  # no proactive replication
    temp = m.declare_temp()
    producer = Task("produce").add_output(temp, "out")
    m.submit(producer, duration=10.0, output_sizes={"out": MB})
    m.run(finalize=False)
    producer_worker = producer.worker_id
    # consumer arrives after the only replica holder dies
    consumer = Task("consume").add_input(temp, "in")
    m.submit(consumer, duration=1.0)
    c.remove_worker(producer_worker, at=m.sim.now)
    m.run(finalize=False)
    assert consumer.state == TaskState.DONE
    assert producer.retries_used == 1  # it ran twice
    assert m.tasks_requeued >= 1


def test_deep_lineage_chain_regenerated():
    c = SimCluster()
    c.add_worker(cores=4, worker_id="w1")
    c.add_worker(cores=4, worker_id="w2")
    m = SimManager(c)
    a, b = m.declare_temp(), m.declare_temp()
    t1 = Task("s1").add_output(a, "out")
    t2 = Task("s2").add_input(a, "in").add_output(b, "out")
    m.submit(t1, duration=5.0, output_sizes={"out": MB})
    m.submit(t2, duration=5.0, output_sizes={"out": MB})
    m.run(finalize=False)
    # both intermediates lived on whichever worker ran the chain; kill it
    holder = t2.worker_id
    consumer = Task("final").add_input(b, "in")
    m.submit(consumer, duration=1.0)
    c.remove_worker(holder, at=m.sim.now)
    m.run(finalize=False)
    assert consumer.state == TaskState.DONE
