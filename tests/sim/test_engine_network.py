"""Tests for the discrete-event engine and the fair-share network model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import Simulation
from repro.sim.network import Network


# -- engine ------------------------------------------------------------------


def test_events_fire_in_time_order():
    sim = Simulation()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_fifo():
    sim = Simulation()
    fired = []
    for i in range(5):
        sim.schedule(1.0, fired.append, i)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_cancel():
    sim = Simulation()
    fired = []
    h = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, h.cancel)
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulation().schedule(-1, print)


def test_run_until_bounds_time():
    sim = Simulation()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["a", "b"]


def test_stop_when():
    sim = Simulation()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_schedule_during_run():
    sim = Simulation()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_schedule_at_past_clamps_to_now():
    sim = Simulation()
    fired = []
    sim.schedule(5.0, lambda: sim.schedule_at(1.0, fired.append, "late"))
    sim.run()
    assert fired == ["late"]
    assert sim.now == 5.0


def test_pending_counts_uncancelled():
    sim = Simulation()
    h1 = sim.schedule(1, print)
    sim.schedule(2, print)
    h1.cancel()
    assert sim.pending() == 1


# -- network --------------------------------------------------------------


def make_net(**nodes):
    sim = Simulation()
    net = Network(sim)
    for name, bps in nodes.items():
        net.add_node(name, bps)
    return sim, net


def test_single_transfer_time():
    sim, net = make_net(a=100.0, b=100.0)
    done = []
    net.start("a", "b", 1000.0, lambda t: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(10.0)]


def test_rate_limited_by_slower_endpoint():
    sim, net = make_net(fast=1000.0, slow=10.0)
    done = []
    net.start("fast", "slow", 100.0, lambda t: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(10.0)]


def test_source_shared_among_fanout():
    # one source serving 4 receivers: each gets 1/4 of the uplink
    sim, net = make_net(src=100.0, a=100.0, b=100.0, c=100.0, d=100.0)
    done = {}
    for dst in "abcd":
        net.start("src", dst, 100.0, lambda t, d=dst: done.update({d: sim.now}))
    sim.run()
    for dst in "abcd":
        assert done[dst] == pytest.approx(4.0)


def test_departure_speeds_up_remaining():
    # two transfers share a source; when the short one ends, the long
    # one gets the full uplink
    sim, net = make_net(src=100.0, a=100.0, b=100.0)
    done = {}
    net.start("src", "a", 100.0, lambda t: done.update({"a": sim.now}))
    net.start("src", "b", 300.0, lambda t: done.update({"b": sim.now}))
    sim.run()
    # both run at 50 B/s; "a" ends at t=2 with b having 200 left,
    # then b runs at 100 B/s: 2 more seconds
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(4.0)


def test_arrival_slows_down_active():
    sim, net = make_net(src=100.0, a=100.0, b=100.0)
    done = {}
    net.start("src", "a", 100.0, lambda t: done.update({"a": sim.now}))
    sim.schedule(0.5, lambda: net.start("src", "b", 100.0, lambda t: done.update({"b": sim.now})))
    sim.run()
    # a: 50 bytes in first 0.5s, then 50 B/s → done at 0.5 + 1.0 = 1.5
    assert done["a"] == pytest.approx(1.5)


def test_zero_size_transfer_completes():
    sim, net = make_net(a=100.0, b=100.0)
    done = []
    net.start("a", "b", 0.0, lambda t: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.0)]


def test_bytes_and_counts_accounted():
    sim, net = make_net(a=100.0, b=100.0)
    net.start("a", "b", 500.0, lambda t: None)
    net.start("b", "a", 300.0, lambda t: None)
    sim.run()
    assert net.completed_transfers == 2
    assert net.bytes_moved == pytest.approx(800.0)
    assert net.active_count() == 0


def test_duplicate_node_rejected():
    sim, net = make_net(a=1.0)
    with pytest.raises(ValueError):
        net.add_node("a", 1.0)


def test_negative_size_rejected():
    sim, net = make_net(a=1.0, b=1.0)
    with pytest.raises(ValueError):
        net.start("a", "b", -5, lambda t: None)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1, max_value=1e6),  # size
            st.floats(min_value=0, max_value=50),  # start offset
        ),
        min_size=1,
        max_size=15,
    )
)
def test_property_conservation_and_capacity(transfers):
    """Total completion time >= sum(bytes)/uplink and all bytes arrive."""
    sim = Simulation()
    net = Network(sim)
    net.add_node("src", 100.0)
    for i in range(len(transfers)):
        net.add_node(f"w{i}", 100.0)
    done = []
    for i, (size, offset) in enumerate(transfers):
        sim.schedule(
            offset,
            lambda i=i, size=size: net.start(
                "src", f"w{i}", size, lambda t: done.append(t)
            ),
        )
    end = sim.run()
    assert len(done) == len(transfers)
    assert net.bytes_moved == pytest.approx(sum(s for s, _ in transfers))
    total_bytes = sum(s for s, _ in transfers)
    # uplink capacity bounds aggregate throughput
    assert end >= total_bytes / 100.0 - 1e-6
    for t in done:
        size = t.size
        assert t.finished_at - t.started_at >= size / 100.0 - 1e-6


def test_transfer_latency_delays_start():
    sim = Simulation()
    net = Network(sim, latency=2.0)
    net.add_node("a", 100.0)
    net.add_node("b", 100.0)
    done = []
    net.start("a", "b", 100.0, lambda t: done.append(sim.now))
    sim.run()
    # 2 s setup + 1 s of bytes
    assert done == [pytest.approx(3.0)]


def test_latency_setup_consumes_no_bandwidth():
    sim = Simulation()
    net = Network(sim, latency=5.0)
    for name in ("src", "x", "y"):
        net.add_node(name, 100.0)
    done = {}
    net.start("src", "x", 100.0, lambda t: done.update(x=sim.now))
    # second transfer starts its setup while the first still in setup;
    # both then stream concurrently sharing the source uplink
    net.start("src", "y", 100.0, lambda t: done.update(y=sim.now))
    sim.run()
    # setup 5 s, then both share 100 B/s: 2 s each
    assert done["x"] == pytest.approx(7.0)
    assert done["y"] == pytest.approx(7.0)
