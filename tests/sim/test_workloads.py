"""Tests for the paper-experiment workload builders (scaled down)."""

import pytest

from repro.sim.trace import (
    ascii_task_view,
    ascii_worker_view,
    run_summary,
    series_table,
)
from repro.sim.workloads import (
    bgd_workflow,
    blast_cluster,
    blast_workflow,
    colmena_workflow,
    distribution_workflow,
    envshare_workflow,
    topeft_workflow,
)


def test_blast_cold_hot_scaled():
    cluster = blast_cluster(n_workers=10)
    cold = blast_workflow(cluster, n_tasks=80, seed=0)
    hot = blast_workflow(cluster, n_tasks=80, seed=1)
    assert cold.tasks_done == hot.tasks_done == 80
    assert hot.makespan < cold.makespan
    assert hot.transfer_counts.get("url", 0) == 0
    assert cold.transfer_counts.get("stage", 0) == 20  # 2 assets x 10 workers


def test_envshare_shared_beats_independent():
    kw = dict(n_tasks=100, n_workers=10, unpack_time=20.0, task_time=5.0)
    shared = envshare_workflow(shared=True, **kw)
    independent = envshare_workflow(shared=False, **kw)
    assert shared.makespan < independent.makespan
    assert shared.transfer_counts.get("stage", 0) == 10


def test_distribution_modes_ordering():
    # a slower source than the aggregate cluster, as at paper scale
    kw = dict(n_workers=60, file_mb=200, server_bps=0.625e9, worker_bps=4e8,
              transfer_latency=0.5)
    url = distribution_workflow("url", **kw)
    unmanaged = distribution_workflow("unmanaged", **kw)
    managed = distribution_workflow("managed", limit=3, **kw)
    assert managed.makespan < url.makespan
    assert unmanaged.makespan > managed.makespan
    assert len(managed.completion_times) == 60
    # completion times are sorted per construction
    assert managed.completion_times == sorted(managed.completion_times)


def test_distribution_unknown_mode():
    with pytest.raises(ValueError):
        distribution_workflow("bogus", n_workers=2)


def test_topeft_tree_structure_and_modes():
    kw = dict(n_chunks=32, fan_in=4, n_workers=8, process_time=10.0,
              manager_bps=0.125e9, hist_mb=20.0, growth=3.0)
    temp = topeft_workflow(in_cluster=True, **kw)
    shared = topeft_workflow(in_cluster=False, **kw)
    # 32 chunks + 8 + 2 + 1 accumulators = 43 tasks
    assert temp.n_tasks == 32 + 8 + 2 + 1
    assert temp.stats.transfer_counts.get("retrieve", 0) == 0
    assert shared.stats.transfer_counts.get("retrieve", 0) == shared.n_tasks
    assert shared.stats.makespan >= temp.stats.makespan


def test_topeft_worker_ramp():
    result = topeft_workflow(
        in_cluster=True, n_chunks=16, fan_in=4, n_workers=8,
        worker_ramp=20.0, process_time=5.0,
    )
    joins = sorted(e.time for e in result.stats.log.events("worker_join"))
    # exactly one join event per worker that arrived before the end,
    # spaced by the ramp interval
    assert joins == sorted(set(joins))
    assert joins[:3] == [0.0, 20.0, 40.0]
    assert max(joins) - min(joins) >= 2 * 20.0


def test_colmena_sharedfs_load_reduction():
    kw = dict(n_inference=30, n_simulation=60, n_workers=20,
              inference_time=5.0, simulation_time=20.0)
    with_peers = colmena_workflow(peer_transfers=True, **kw)
    without = colmena_workflow(peer_transfers=False, **kw)
    assert without.sharedfs_loads == 20
    assert with_peers.sharedfs_loads == 3
    assert with_peers.peer_loads == 17


def test_bgd_ramp_and_completion():
    result = bgd_workflow(
        n_calls=120, n_workers=20, library_startup=10.0,
        call_time_range=(5.0, 10.0), function_slots=2,
    )
    assert len(result.library_ready_times) == 20
    assert result.first_call_started >= result.library_ready_times[0]
    assert result.stats.tasks_done == 120


# -- trace rendering --------------------------------------------------------


@pytest.fixture(scope="module")
def small_run():
    cluster = blast_cluster(n_workers=4)
    return blast_workflow(cluster, n_tasks=20, seed=3)


def test_ascii_worker_view_renders(small_run):
    art = ascii_worker_view(small_run.log, width=40, max_workers=4)
    lines = art.splitlines()
    assert len(lines) == 5  # 4 workers + legend
    assert "#" in art  # someone executed something
    assert "legend" in lines[-1]


def test_ascii_task_view_renders(small_run):
    art = ascii_task_view(small_run.log, width=40, max_tasks=10)
    assert len(art.splitlines()) == 10
    assert "#" in art
    assert "blast" in art


def test_ascii_task_view_empty():
    from repro.core.events import EventLog

    assert "no completed tasks" in ascii_task_view(EventLog())


def test_run_summary_fractions(small_run):
    summary = run_summary(small_run.log)
    assert summary["tasks"] == 20
    assert summary["workers"] == 4
    assert 0.0 < summary["exec_fraction"] <= 1.0
    assert summary["makespan"] > 0


def test_series_table(small_run):
    table = series_table(small_run.log, points=5)
    lines = table.splitlines()
    assert len(lines) == 7  # header + 6 samples
    assert "completed" in lines[0]
    assert lines[-1].split()[-1] == "20"


def test_sampling_caps_rows(small_run):
    art = ascii_task_view(small_run.log, width=30, max_tasks=5)
    assert len(art.splitlines()) == 5
    art2 = ascii_worker_view(small_run.log, width=30, max_workers=2)
    assert len(art2.splitlines()) == 3
