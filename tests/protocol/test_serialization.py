"""Tests for by-value function serialization (mini-cloudpickle)."""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.protocol import serialization as ser


def test_round_trip_plain_data():
    obj = {"a": [1, 2.5, "x"], "b": (None, True)}
    assert ser.loads(ser.dumps(obj)) == obj


def test_importable_function_by_reference():
    data = ser.dumps(os.path.join)
    fn = ser.loads(data)
    assert fn is os.path.join
    assert len(data) < 200  # by reference, not by value


def test_local_function_by_value():
    def adder(x, y=10):
        return x + y

    fn = ser.loads(ser.dumps(adder))
    assert fn(5) == 15
    assert fn(5, y=1) == 6
    assert fn.__name__ == "adder"


def test_closure_captured():
    base = 100

    def offset(x):
        return x + base

    fn = ser.loads(ser.dumps(offset))
    assert fn(1) == 101


def test_globals_captured_transitively():
    # module-level helper referenced through a local function
    fn = ser.loads(ser.dumps(_uses_helper))
    assert fn(3) == 9


def test_recursive_function():
    def fact(n):
        return 1 if n <= 1 else n * fact(n - 1)

    fn = ser.loads(ser.dumps(fact))
    assert fn(5) == 120


def test_mutually_recursive_functions():
    def is_even(n):
        return True if n == 0 else is_odd(n - 1)

    def is_odd(n):
        return False if n == 0 else is_even(n - 1)

    # closure over each other happens via enclosing scope cells
    fn = ser.loads(ser.dumps(is_even))
    assert fn(10) is True
    assert fn(7) is False


def test_lambda():
    fn = ser.loads(ser.dumps(lambda x: x * 3))
    assert fn(4) == 12


def test_function_referencing_module():
    import math

    def area(r):
        return math.pi * r * r

    fn = ser.loads(ser.dumps(area))
    assert fn(1) == pytest.approx(3.14159, abs=1e-4)


def test_function_with_kwdefaults_and_doc():
    def f(*, k=7):
        """docstring survives"""
        return k

    fn = ser.loads(ser.dumps(f))
    assert fn() == 7
    assert fn.__doc__ == "docstring survives"


def test_nested_function_factory():
    def make_mult(n):
        def mult(x):
            return x * n

        return mult

    fn = ser.loads(ser.dumps(make_mult(6)))
    assert fn(7) == 42


def test_functions_inside_containers():
    payload = {"f": lambda x: x + 1, "g": [lambda: 5]}
    out = ser.loads(ser.dumps(payload))
    assert out["f"](1) == 2
    assert out["g"][0]() == 5


def test_unserializable_raises_clean_error():
    with pytest.raises(ser.SerializationError):
        ser.dumps(open(os.devnull))


def test_cross_process_main_function():
    """A function defined in __main__ must load in a fresh interpreter."""
    script = textwrap.dedent(
        """
        import sys
        from repro.protocol import serialization as ser

        CONSTANT = 5

        def main_fn(x):
            return x * CONSTANT

        blob = ser.dumps(main_fn)
        sys.stdout.buffer.write(blob)
        """
    )
    produced = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, check=True
    ).stdout
    fn = ser.loads(produced)
    assert fn(3) == 15


def _helper(x):
    return x * x


def _uses_helper(x):
    return _helper(x)


def test_portable_round_trip():
    def fn(x):
        return x + 1

    blob = ser.dumps_portable({"func": fn, "n": 3})
    out = ser.loads_portable(blob)
    assert out["func"](out["n"]) == 4


def test_portable_carries_path_hints():
    import pickle

    blob = ser.dumps_portable(42)
    envelope = pickle.loads(blob)
    assert "sys_path" in envelope and envelope["sys_path"]
    assert all(isinstance(p, str) for p in envelope["sys_path"])


def test_portable_extends_receiver_path(tmp_path):
    """A fresh interpreter can import sender-local modules via hints."""
    import subprocess
    import textwrap

    module_dir = tmp_path / "site"
    module_dir.mkdir()
    (module_dir / "sender_local_mod.py").write_text("def trip(x):\n    return x * 3\n")
    producer = textwrap.dedent(
        f"""
        import sys
        sys.path.insert(0, {str(module_dir)!r})
        import sender_local_mod
        from repro.protocol import serialization as ser
        sys.stdout.buffer.write(ser.dumps_portable(sender_local_mod.trip))
        """
    )
    blob = subprocess.run(
        [sys.executable, "-c", producer], capture_output=True, check=True
    ).stdout
    consumer = textwrap.dedent(
        """
        import sys
        from repro.protocol import serialization as ser
        fn = ser.loads_portable(sys.stdin.buffer.read())
        print(fn(7))
        """
    )
    out = subprocess.run(
        [sys.executable, "-c", consumer], input=blob, capture_output=True, check=True
    ).stdout
    assert out.strip() == b"21"


def test_portable_rejects_non_envelope():
    with pytest.raises(ser.SerializationError):
        ser.loads_portable(ser.dumps({"no": "blob"}))
    with pytest.raises(ser.SerializationError):
        ser.loads_portable(b"garbage")
