"""Client-session wire kinds: validation and session dispatch."""

import pytest

from repro.protocol.connection import (
    SESSION_CLIENT,
    SESSION_WORKER,
    session_kind,
)
from repro.protocol.messages import CLIENT_KINDS, M, WireError, validate


def test_client_kinds_cover_every_client_request():
    assert CLIENT_KINDS == {
        M.CLIENT_HELLO,
        M.DECLARE_FILE,
        M.SUBMIT_TASK,
        M.SUBMIT_DAG,
        M.CREATE_LIBRARY,
        M.FETCH_RESULT,
        M.DETACH,
    }


@pytest.mark.parametrize(
    "msg",
    [
        {"type": M.CLIENT_HELLO, "tenant": "alice"},
        {"type": M.CLIENT_HELLO, "tenant": "alice", "password": "pw", "session": "tok"},
        {"type": M.DECLARE_FILE, "ref": "r1", "spec": {"kind": "buffer", "size": 3}},
        {"type": M.SUBMIT_TASK, "ref": "r2", "spec": {"command": "true"}},
        {"type": M.SUBMIT_DAG, "ref": "r3", "tasks": [{"command": "true"}]},
        {
            "type": M.CREATE_LIBRARY,
            "ref": "r4",
            "library": "lib",
            "functions": ["f"],
            "payload_size": 10,
        },
        {"type": M.FETCH_RESULT, "cache_name": "buffer-md5-abc"},
        {"type": M.DETACH},
        {"type": M.WELCOME, "session": "tok", "tenant": "alice"},
        {"type": M.CLIENT_REJECT, "reason": "auth: bad password"},
        {"type": M.FILE_DECLARED, "ref": "r1", "cache_name": "n", "cache_hit": True},
        {"type": M.TASK_ACCEPTED, "ref": "r2", "task_id": "t1"},
        {"type": M.TASK_RESULT, "task_id": "t1", "state": "done"},
        {"type": M.LIBRARY_CREATED, "ref": "r4", "library": "lib"},
        {"type": M.WORKFLOW_DONE, "tenant": "alice"},
        {"type": M.DETACHED},
    ],
)
def test_client_messages_validate(msg):
    validate(msg)


@pytest.mark.parametrize(
    "msg",
    [
        {"type": M.CLIENT_HELLO},  # missing tenant
        {"type": M.DECLARE_FILE, "ref": "r"},  # missing spec
        {"type": M.SUBMIT_TASK, "spec": {}},  # missing ref
        {"type": M.SUBMIT_DAG, "ref": "r"},  # missing tasks
        {"type": M.CREATE_LIBRARY, "ref": "r", "library": "lib"},  # missing functions
        {"type": M.FETCH_RESULT},  # missing cache_name
        {"type": M.TASK_ACCEPTED, "ref": "r"},  # missing task_id
        {"type": "bogus_kind"},  # unknown type
    ],
)
def test_malformed_client_messages_raise(msg):
    with pytest.raises(WireError):
        validate(msg)


def test_session_kind_dispatch():
    assert session_kind("register") == SESSION_WORKER
    assert session_kind(M.CLIENT_HELLO) == SESSION_CLIENT
    # anything else cannot open a session
    assert session_kind(M.SUBMIT_TASK) is None
    assert session_kind("heartbeat") is None
    assert session_kind("bogus") is None
