"""Tests for socket framing and the wire message schema."""

import threading

import pytest

from repro.protocol.connection import Connection, ProtocolError, listen
from repro.protocol.messages import M, WireError, validate


@pytest.fixture()
def conn_pair():
    """A connected (client, server) Connection pair over localhost."""
    server_sock = listen()
    host, port = server_sock.getsockname()
    result = {}

    def accept():
        s, _ = server_sock.accept()
        result["server"] = Connection(s)

    t = threading.Thread(target=accept)
    t.start()
    client = Connection.connect(host, port)
    t.join(timeout=5)
    server = result["server"]
    yield client, server
    client.close()
    server.close()
    server_sock.close()


def test_message_round_trip(conn_pair):
    client, server = conn_pair
    client.send_message({"type": "ack", "n": 42, "s": "héllo"})
    msg = server.recv_message()
    assert msg == {"type": "ack", "n": 42, "s": "héllo"}


def test_multiple_messages_in_order(conn_pair):
    client, server = conn_pair
    for i in range(20):
        client.send_message({"type": "ack", "i": i})
    for i in range(20):
        assert server.recv_message()["i"] == i


def test_bytes_after_message(conn_pair):
    client, server = conn_pair
    payload = bytes(range(256)) * 1000
    client.send_message({"type": "file_data", "size": len(payload)})
    client.send_bytes(payload)
    msg = server.recv_message()
    assert server.recv_bytes(msg["size"]) == payload


def test_file_streaming(conn_pair, tmp_path):
    client, server = conn_pair
    src = tmp_path / "src.bin"
    dst = tmp_path / "dst.bin"
    content = b"block" * 500_000  # 2.5 MB, crosses chunk boundaries
    src.write_bytes(content)
    client.send_message({"type": "file_data", "size": len(content)})
    sender = threading.Thread(target=client.send_file, args=(src, len(content)))
    sender.start()
    msg = server.recv_message()
    server.recv_to_file(dst, msg["size"])
    sender.join(timeout=10)
    assert dst.read_bytes() == content


def test_send_file_shorter_than_announced(conn_pair, tmp_path):
    client, _ = conn_pair
    short = tmp_path / "short.bin"
    short.write_bytes(b"123")
    with pytest.raises(ProtocolError):
        client.send_file(short, 10)


def test_eof_raises_protocol_error(conn_pair):
    client, server = conn_pair
    client.close()
    with pytest.raises(ProtocolError):
        server.recv_message()


def test_non_dict_message_rejected(conn_pair):
    client, server = conn_pair
    import json, struct

    payload = json.dumps([1, 2, 3]).encode()
    client.sock.sendall(struct.pack(">I", len(payload)) + payload)
    with pytest.raises(ProtocolError):
        server.recv_message()


def test_corrupt_json_rejected(conn_pair):
    client, server = conn_pair
    import struct

    client.sock.sendall(struct.pack(">I", 4) + b"{{{{")
    with pytest.raises(ProtocolError):
        server.recv_message()


# -- schema ------------------------------------------------------------


def test_validate_accepts_complete_message():
    assert validate({"type": M.CACHE_UPDATE, "cache_name": "x", "size": 1}) == M.CACHE_UPDATE


def test_validate_rejects_unknown_type():
    with pytest.raises(WireError):
        validate({"type": "nonsense"})
    with pytest.raises(WireError):
        validate({})


def test_validate_reports_missing_fields():
    with pytest.raises(WireError, match="cache_name"):
        validate({"type": M.PUT_FILE, "size": 1, "level": 1})


def test_all_schema_types_validate_with_required_fields():
    from repro.protocol.messages import _SCHEMA

    for mtype, fields in _SCHEMA.items():
        msg = {"type": mtype, **{f: "x" for f in fields}}
        assert validate(msg) == mtype
