"""Tests for socket framing and the wire message schema."""

import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.connection import (
    IO_CHUNK,
    MAX_MESSAGE_SIZE,
    Connection,
    FrameReassembler,
    ProtocolError,
    encode_frame,
    listen,
)
from repro.protocol.messages import M, WireError, validate


@pytest.fixture()
def conn_pair():
    """A connected (client, server) Connection pair over localhost."""
    server_sock = listen()
    host, port = server_sock.getsockname()
    result = {}

    def accept():
        s, _ = server_sock.accept()
        result["server"] = Connection(s)

    t = threading.Thread(target=accept)
    t.start()
    client = Connection.connect(host, port)
    t.join(timeout=5)
    server = result["server"]
    yield client, server
    client.close()
    server.close()
    server_sock.close()


def test_message_round_trip(conn_pair):
    client, server = conn_pair
    client.send_message({"type": "ack", "n": 42, "s": "héllo"})
    msg = server.recv_message()
    assert msg == {"type": "ack", "n": 42, "s": "héllo"}


def test_multiple_messages_in_order(conn_pair):
    client, server = conn_pair
    for i in range(20):
        client.send_message({"type": "ack", "i": i})
    for i in range(20):
        assert server.recv_message()["i"] == i


def test_bytes_after_message(conn_pair):
    client, server = conn_pair
    payload = bytes(range(256)) * 1000
    client.send_message({"type": "file_data", "size": len(payload)})
    client.send_bytes(payload)
    msg = server.recv_message()
    assert server.recv_bytes(msg["size"]) == payload


def test_file_streaming(conn_pair, tmp_path):
    client, server = conn_pair
    src = tmp_path / "src.bin"
    dst = tmp_path / "dst.bin"
    content = b"block" * 500_000  # 2.5 MB, crosses chunk boundaries
    src.write_bytes(content)
    client.send_message({"type": "file_data", "size": len(content)})
    sender = threading.Thread(target=client.send_file, args=(src, len(content)))
    sender.start()
    msg = server.recv_message()
    server.recv_to_file(dst, msg["size"])
    sender.join(timeout=10)
    assert dst.read_bytes() == content


def test_send_file_shorter_than_announced(conn_pair, tmp_path):
    client, _ = conn_pair
    short = tmp_path / "short.bin"
    short.write_bytes(b"123")
    with pytest.raises(ProtocolError):
        client.send_file(short, 10)


def test_eof_raises_protocol_error(conn_pair):
    client, server = conn_pair
    client.close()
    with pytest.raises(ProtocolError):
        server.recv_message()


def test_non_dict_message_rejected(conn_pair):
    client, server = conn_pair
    import json, struct

    payload = json.dumps([1, 2, 3]).encode()
    client.sock.sendall(struct.pack(">I", len(payload)) + payload)
    with pytest.raises(ProtocolError):
        server.recv_message()


def test_corrupt_json_rejected(conn_pair):
    client, server = conn_pair
    import struct

    client.sock.sendall(struct.pack(">I", 4) + b"{{{{")
    with pytest.raises(ProtocolError):
        server.recv_message()


# -- incremental reassembly (reactor receive path) ---------------------


def _frame_of_length(body_len: int) -> bytes:
    """A syntactically valid frame whose JSON body is exactly body_len."""
    pad = body_len - len('{"type":"ack","p":""}')
    assert pad >= 0
    return encode_frame({"type": "ack", "p": "x" * pad})


def _chunks(blob: bytes, cuts: list[int]):
    """Split a byte string at the given (sorted, in-range) positions."""
    points = sorted({min(c, len(blob)) for c in cuts})
    prev = 0
    out = []
    for p in points:
        out.append(blob[prev:p])
        prev = p
    out.append(blob[prev:])
    # an empty feed() means EOF, so empty segments must not be fed
    return [c for c in out if c]


_MESSAGES = st.lists(
    st.fixed_dictionaries(
        {"type": st.just("ack"), "i": st.integers(0, 2**31)},
        optional={"s": st.text(max_size=20)},
    ),
    min_size=1,
    max_size=10,
)


@settings(deadline=None, max_examples=60)
@given(messages=_MESSAGES, data=st.data())
def test_fuzz_reassembly_survives_arbitrary_splits(messages, data):
    """Any split of the byte stream yields the same messages in order."""
    blob = b"".join(encode_frame(m) for m in messages)
    cuts = data.draw(st.lists(st.integers(0, len(blob)), max_size=20))
    frames = FrameReassembler()
    received = []
    for chunk in _chunks(blob, cuts):
        frames.feed(chunk)
        while (item := frames.next_item()) is not None:
            received.append(item)
    frames.feed(b"")
    assert frames.next_item() is None  # clean EOF: iteration just ends
    assert received == [("msg", m) for m in messages]


@settings(deadline=None, max_examples=20)
@given(offset=st.integers(-3, 3))
def test_fuzz_frame_straddling_io_chunk(offset):
    """Frames near the IO_CHUNK read size reassemble from chunked reads."""
    frame = _frame_of_length(IO_CHUNK + offset)
    blob = frame + encode_frame({"type": "ack", "tail": 1})
    frames = FrameReassembler()
    received = []
    for start in range(0, len(blob), IO_CHUNK):  # reads of exactly IO_CHUNK
        frames.feed(blob[start : start + IO_CHUNK])
        while (item := frames.next_item()) is not None:
            received.append(item)
    assert len(received) == 2
    assert received[0][1]["p"] == "x" * (IO_CHUNK + offset - len('{"type":"ack","p":""}'))
    assert received[1][1] == {"type": "ack", "tail": 1}


@settings(deadline=None, max_examples=40)
@given(
    announced=st.integers(1, 4096),
    delivered_frac=st.floats(0.0, 1.0, exclude_max=True),
)
def test_fuzz_truncated_eof_mid_bulk_stream(announced, delivered_frac):
    """EOF with a bulk payload outstanding raises, whatever arrived."""
    frames = FrameReassembler()
    frames.feed(encode_frame({"type": "file_data", "size": announced}))
    assert frames.next_item()[0] == "msg"
    frames.expect_bytes(announced)
    delivered = int(announced * delivered_frac)
    if delivered:  # feed(b"") would mean EOF, which comes below
        frames.feed(b"\0" * delivered)
    assert frames.next_item() is None  # still waiting on the remainder
    frames.feed(b"")
    with pytest.raises(ProtocolError, match="mid-bulk payload"):
        frames.next_item()


@pytest.mark.parametrize("cut", ["header", "body"])
def test_truncated_eof_mid_frame(cut):
    frame = encode_frame({"type": "ack", "n": 7})
    frames = FrameReassembler()
    frames.feed(frame[:2] if cut == "header" else frame[:-1])
    assert frames.next_item() is None
    frames.feed(b"")
    with pytest.raises(ProtocolError, match="mid-frame"):
        frames.next_item()


def test_oversized_frame_rejected_at_exact_limit():
    """MAX_MESSAGE_SIZE is accepted; one byte more is refused up front."""
    over = FrameReassembler()
    over.feed(struct.pack(">I", MAX_MESSAGE_SIZE + 1))
    with pytest.raises(ProtocolError, match="too large"):
        over.next_item()
    at_limit = FrameReassembler()
    at_limit.feed(struct.pack(">I", MAX_MESSAGE_SIZE))
    assert at_limit.next_item() is None  # legal: waiting for the body


@pytest.mark.parametrize("body_len,ok", [(128, True), (129, False)])
def test_frame_size_limit_boundary_full_frames(body_len, ok):
    """±1 around the limit with real frames (shrunk limit, same code path)."""
    frames = FrameReassembler(max_message_size=128)
    frames.feed(_frame_of_length(body_len))
    if ok:
        kind, msg = frames.next_item()
        assert kind == "msg" and len(msg["p"]) == body_len - len('{"type":"ack","p":""}')
    else:
        with pytest.raises(ProtocolError, match="too large"):
            frames.next_item()


def test_bulk_mode_interleaves_with_frames():
    """msg → bytes → msg in one buffer, pulled in strict wire order."""
    frames = FrameReassembler()
    payload = bytes(range(256))
    frames.feed(
        encode_frame({"type": "file_data", "size": len(payload)})
        + payload
        + encode_frame({"type": "ack"})
    )
    kind, msg = frames.next_item()
    assert kind == "msg"
    frames.expect_bytes(msg["size"])
    assert frames.next_item() == ("bytes", payload)
    assert frames.next_item() == ("msg", {"type": "ack"})


def test_expect_bytes_guards():
    frames = FrameReassembler()
    frames.expect_bytes(3)
    with pytest.raises(ProtocolError):
        frames.expect_bytes(1)  # already in bulk mode
    frames.feed(b"abc")
    assert frames.next_item() == ("bytes", b"abc")
    with pytest.raises(ProtocolError):
        frames.expect_bytes(-1)


# -- schema ------------------------------------------------------------


def test_validate_accepts_complete_message():
    assert validate({"type": M.CACHE_UPDATE, "cache_name": "x", "size": 1}) == M.CACHE_UPDATE


def test_validate_rejects_unknown_type():
    with pytest.raises(WireError):
        validate({"type": "nonsense"})
    with pytest.raises(WireError):
        validate({})


def test_validate_reports_missing_fields():
    with pytest.raises(WireError, match="cache_name"):
        validate({"type": M.PUT_FILE, "size": 1, "level": 1})


def test_all_schema_types_validate_with_required_fields():
    from repro.protocol.messages import _SCHEMA

    for mtype, fields in _SCHEMA.items():
        msg = {"type": mtype, **{f: "x" for f in fields}}
        assert validate(msg) == mtype
