"""Batch-envelope semantics and :class:`BatchSender` wire behaviour.

The load-bearing invariants, each pinned here:

* the receiver unwraps a ``batch`` frame into the same messages, in
  the same order, the sender queued;
* a worker's ``cache_update`` → ``task_done`` ordering survives any
  interleaving of queued notices and direct sends (FIFO sender);
* a lone notice travels as a bare frame, byte-identical to the
  unbatched protocol;
* envelopes never nest and never carry messages that announce
  trailing bulk bytes.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.batching import BatchSender
from repro.protocol.connection import Connection, FrameReassembler, encode_frame, listen
from repro.protocol.messages import M, WireError, validate, validate_batch


@pytest.fixture()
def conn_pair():
    """A connected (client, server) Connection pair over localhost."""
    server_sock = listen()
    host, port = server_sock.getsockname()
    result = {}

    def accept():
        s, _ = server_sock.accept()
        result["server"] = Connection(s)

    t = threading.Thread(target=accept)
    t.start()
    client = Connection.connect(host, port)
    t.join(timeout=5)
    server = result["server"]
    yield client, server
    client.close()
    server.close()
    server_sock.close()


def _notice(i):
    return {"type": M.CACHE_UPDATE, "cache_name": f"f{i}", "size": i + 1}


def _unwrap(msg):
    """Flatten a received frame into its logical messages."""
    return validate_batch(msg) if msg.get("type") == M.BATCH else [msg]


# -- envelope round-trip -----------------------------------------------


@settings(deadline=None, max_examples=60)
@given(
    notices=st.lists(
        st.builds(_notice, st.integers(0, 1000)), min_size=2, max_size=50
    )
)
def test_fuzz_batch_envelope_round_trip(notices):
    """encode → reassemble → validate_batch reproduces the sub-messages."""
    frames = FrameReassembler()
    frames.feed(encode_frame({"type": M.BATCH, "messages": notices}))
    kind, msg = frames.next_item()
    assert kind == "msg"
    assert validate(msg) == M.BATCH
    assert validate_batch(msg) == notices


def test_batch_envelope_rejects_nesting_and_bulk_riders():
    inner = {"type": M.BATCH, "messages": [_notice(0)]}
    with pytest.raises(WireError, match="nest"):
        validate_batch({"type": M.BATCH, "messages": [inner]})
    with pytest.raises(WireError, match="non-empty"):
        validate_batch({"type": M.BATCH, "messages": []})
    bulk = {"type": M.FILE_DATA, "cache_name": "x", "found": True, "size": 3}
    with pytest.raises(WireError, match="file_data"):
        validate_batch({"type": M.BATCH, "messages": [bulk]})
    done = {"type": M.TASK_DONE, "task_id": "t", "exit_code": 0, "result_size": 8}
    with pytest.raises(WireError, match="task_done"):
        validate_batch({"type": M.BATCH, "messages": [done]})


# -- BatchSender wire behaviour ----------------------------------------


def test_lone_notice_is_a_bare_frame(conn_pair):
    """A window with one notice stays byte-identical to the old wire."""
    client, server = conn_pair
    sender = BatchSender(client, max_delay=0.001)
    sender.notice(_notice(7))
    msg = server.recv_message()
    assert msg == _notice(7)  # no envelope
    sender.close()


def test_full_window_flushes_without_deadline(conn_pair):
    client, server = conn_pair
    # deadline far away: only the size trigger can flush this fast
    sender = BatchSender(client, max_batch=4, max_delay=30.0)
    for i in range(4):
        sender.notice(_notice(i))
    msg = server.recv_message()
    assert msg["type"] == M.BATCH
    assert validate_batch(msg) == [_notice(i) for i in range(4)]
    sender.close()


def test_deadline_flushes_partial_window(conn_pair):
    client, server = conn_pair
    sender = BatchSender(client, max_batch=1000, max_delay=0.005)
    for i in range(3):
        sender.notice(_notice(i))
    msg = server.recv_message()  # arrives ~max_delay later, one envelope
    assert validate_batch(msg) == [_notice(i) for i in range(3)]
    sender.close()


def test_direct_send_flushes_queue_first(conn_pair):
    client, server = conn_pair
    sender = BatchSender(client, max_batch=1000, max_delay=30.0)
    for i in range(3):
        sender.notice(_notice(i))
    done = {"type": M.TASK_DONE, "task_id": "t1", "exit_code": 0}
    sender.send(done)
    first = server.recv_message()
    assert validate_batch(first) == [_notice(i) for i in range(3)]
    assert server.recv_message() == done
    sender.close()


def test_send_with_payload_keeps_bulk_contiguous(conn_pair):
    client, server = conn_pair
    sender = BatchSender(client, max_batch=1000, max_delay=30.0)
    sender.notice(_notice(0))
    blob = b"result-bytes"
    sender.send(
        {"type": M.TASK_DONE, "task_id": "t", "exit_code": 0,
         "result_size": len(blob)},
        blob,
    )
    assert server.recv_message() == _notice(0)  # flushed ahead, bare
    msg = server.recv_message()
    assert server.recv_bytes(msg["result_size"]) == blob
    sender.close()


def test_zero_delay_disables_coalescing(conn_pair):
    client, server = conn_pair
    sender = BatchSender(client, max_delay=0)
    for i in range(3):
        sender.notice(_notice(i))
    for i in range(3):
        assert server.recv_message() == _notice(i)  # three bare frames
    sender.close()


def test_close_flushes_remaining_notices(conn_pair):
    client, server = conn_pair
    sender = BatchSender(client, max_batch=1000, max_delay=30.0)
    sender.notice(_notice(1))
    sender.notice(_notice(2))
    sender.close()
    msg = server.recv_message()
    assert validate_batch(msg) == [_notice(1), _notice(2)]


@settings(deadline=None, max_examples=30)
@given(
    plan=st.lists(st.booleans(), min_size=1, max_size=30),
    max_batch=st.integers(1, 8),
)
def test_fuzz_fifo_order_preserved_across_flush_patterns(plan, max_batch):
    """Notices and direct sends arrive in exact call order, any window.

    True booleans are queued notices, False are direct sends — the
    receiver must observe the identical sequence after unwrapping
    envelopes, whatever the batch size triggers in between.
    """
    server_sock = listen()
    host, port = server_sock.getsockname()
    result = {}

    def accept():
        s, _ = server_sock.accept()
        result["server"] = Connection(s)

    t = threading.Thread(target=accept)
    t.start()
    client = Connection.connect(host, port)
    t.join(timeout=5)
    server = result["server"]
    try:
        sender = BatchSender(client, max_batch=max_batch, max_delay=30.0)
        sent = []
        for i, queued in enumerate(plan):
            if queued:
                sender.notice(_notice(i))
                sent.append(_notice(i))
            else:
                direct = {"type": M.TASK_DONE, "task_id": f"t{i}", "exit_code": 0}
                sender.send(direct)
                sent.append(direct)
        sender.close()
        received = []
        while len(received) < len(sent):
            received.extend(_unwrap(server.recv_message()))
        assert received == sent
    finally:
        client.close()
        server.close()
        server_sock.close()
