"""Service-mode observability: client counters and the tenant table."""

from repro.core.events import Event
from repro.observe.cli import (
    format_log_status,
    format_tenant_table,
    replay_status,
)


def _service_events():
    return [
        Event(0.0, "worker_join", worker="w0"),
        Event(0.1, "client_attach", worker="C001", category="alice"),
        Event(0.2, "client_attach", worker="C002", category="bob"),
        Event(0.3, "client_rejected", worker="C003", category="auth"),
        Event(0.4, "cache_shared", file="buffer-md5-abc", size=512, category="bob"),
        Event(0.5, "client_detach", worker="C002", category="bob"),
    ]


def test_replay_counts_client_activity():
    st = replay_status(_service_events(), runtime="real")
    assert st.clients_attached == 2
    assert st.clients_rejected == 1
    assert st.cache_shared == 1


def test_format_mentions_client_line_only_in_service_mode():
    text = format_log_status(replay_status(_service_events()))
    assert "clients: 2 attached, 1 rejected; 1 cross-tenant cache hits" in text
    # a plain workflow log keeps its old shape: no client line at all
    plain = format_log_status(
        replay_status([Event(0.0, "worker_join", worker="w0")])
    )
    assert "clients:" not in plain


def _metrics(**overrides):
    base = {
        "tenant.alice.tasks_queued": {"type": "gauge", "value": 3.0},
        "tenant.alice.tasks_running": {"type": "gauge", "value": 1.0},
        "tenant.alice.tasks_done": {"type": "counter", "value": 7.0},
        "tenant.alice.tasks_failed": {"type": "counter", "value": 0.0},
        "tenant.alice.bytes_declared": {"type": "gauge", "value": 2_000_000},
        "tenant.alice.cache_hits": {"type": "counter", "value": 2.0},
        "tenant.alice.quota_headroom": {"type": "gauge", "value": 5.0},
        "tenant.bob.tasks_queued": {"type": "gauge", "value": 0.0},
        "tenant.bob.quota_headroom": {"type": "gauge", "value": -1.0},
        # non-tenant instruments must be ignored by the table
        "sched.pump_seconds": {"type": "histogram", "count": 4},
    }
    base.update(overrides)
    return base


def test_tenant_table_rows_and_headroom():
    table = format_tenant_table(_metrics())
    lines = table.splitlines()
    assert lines[0] == "tenants:"
    assert "alice" in table and "bob" in table
    alice = next(line for line in lines if "alice" in line)
    assert "3" in alice and "7" in alice and "2.0MB" in alice
    bob = next(line for line in lines if "bob" in line)
    assert "∞" in bob  # unlimited quota renders as infinity
    assert "sched" not in table


def test_tenant_table_empty_without_tenant_metrics():
    assert format_tenant_table({"sched.pump_seconds": {"count": 1}}) == ""
