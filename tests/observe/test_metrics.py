"""Counters, gauges, histograms and the registry under concurrency."""

import json
import threading

import pytest

from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SnapshotDumper,
)


def test_counter_accumulates_and_rejects_decrease():
    c = Counter("events")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_value_and_peak():
    g = Gauge("depth")
    g.inc(3)
    g.dec(2)
    g.set(7)
    g.set(1)
    assert g.value == 1
    assert g.max == 7


def test_histogram_exact_moments():
    h = Histogram("lat")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == 10.0
    assert h.mean == 2.5
    snap = h.snapshot()
    assert snap["min"] == 1.0 and snap["max"] == 4.0


def test_histogram_reservoir_stays_bounded():
    h = Histogram("lat", reservoir_size=64)
    for i in range(10_000):
        h.observe(float(i))
    assert h.count == 10_000
    assert len(h._reservoir) == 64
    # moments stay exact even after the reservoir saturates
    assert h.snapshot()["max"] == 9999.0
    assert h.snapshot()["min"] == 0.0
    # reservoir values are a subset of what was observed
    assert all(0.0 <= v <= 9999.0 for v in h._reservoir)


def test_histogram_percentiles_reasonable():
    h = Histogram("lat", reservoir_size=2048)
    for i in range(1000):
        h.observe(float(i))
    assert abs(h.percentile(50) - 500) < 50
    assert abs(h.percentile(90) - 900) < 50
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_sampling_is_deterministic_per_name():
    def fill(name):
        h = Histogram(name, reservoir_size=16)
        for i in range(500):
            h.observe(float(i))
        return list(h._reservoir)

    assert fill("same.name") == fill("same.name")


def test_concurrent_counter_increments_are_lossless():
    c = Counter("hits")
    n_threads, per_thread = 8, 5000

    def work():
        for _ in range(per_thread):
            c.inc()

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == n_threads * per_thread


def test_concurrent_histogram_observations_are_lossless():
    h = Histogram("lat", reservoir_size=128)
    n_threads, per_thread = 8, 2000

    def work():
        for i in range(per_thread):
            h.observe(float(i))

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert h.count == n_threads * per_thread
    assert len(h._reservoir) == 128


def test_registry_get_or_create_and_kind_conflict():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    reg.gauge("b")
    with pytest.raises(TypeError):
        reg.counter("b")
    assert reg.names() == ["a", "b"]


def test_registry_snapshot_and_dump(tmp_path):
    reg = MetricsRegistry()
    reg.counter("hits").inc(3)
    reg.gauge("depth").set(2)
    reg.histogram("lat").observe(0.5)
    path = str(tmp_path / "metrics.json")
    reg.dump(path)
    payload = json.load(open(path))
    assert payload["metrics"]["hits"] == {"type": "counter", "value": 3}
    assert payload["metrics"]["depth"]["value"] == 2
    assert payload["metrics"]["lat"]["count"] == 1
    assert "dumped_at" in payload


def test_snapshot_dumper_writes_final_state_on_stop(tmp_path):
    reg = MetricsRegistry()
    path = str(tmp_path / "metrics.json")
    dumper = SnapshotDumper(reg, path, interval=3600).start()
    reg.counter("hits").inc(7)
    dumper.stop()
    payload = json.load(open(path))
    assert payload["metrics"]["hits"]["value"] == 7
    dumper.stop()  # idempotent
