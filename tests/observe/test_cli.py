"""``repro-status`` replays a transaction log into a world state."""

import json

from repro.core.events import Event
from repro.observe.cli import format_log_status, main, replay_status
from repro.observe.txnlog import TransactionLogWriter


def _events():
    return [
        Event(0.0, "worker_join", worker="w0"),
        Event(0.0, "worker_join", worker="w1"),
        Event(0.5, "transfer_start", worker="w0", file="f1", size=1000,
              category="@manager"),
        Event(1.0, "transfer_end", worker="w0", file="f1", size=1000,
              category="@manager"),
        Event(1.0, "file_cached", worker="w0", file="f1", size=1000),
        Event(1.5, "task_start", worker="w0", task="t1"),
        Event(2.0, "task_start", worker="w1", task="t2"),
        Event(3.0, "task_end", worker="w0", task="t1"),
        Event(3.5, "library_ready", worker="w1", category="mylib"),
    ]


def test_replay_midstream_state():
    st = replay_status(_events(), runtime="sim")
    assert st.workers_connected == 2
    assert st.tasks_running == 1  # t2 still open
    assert st.tasks_done == 1
    assert st.transfers_open == 0
    assert st.transfers_done == 1
    assert st.bytes_by_kind == {"manager": 1000}
    assert st.workers["w0"].cached_objects == 1
    assert st.workers["w0"].cached_bytes == 1000
    assert st.libraries_ready == {"mylib": 1}
    assert not st.workflow_done


def test_replay_worker_leave_drops_its_tasks():
    events = _events() + [
        Event(4.0, "worker_leave", worker="w1"),
        Event(5.0, "workflow_done"),
    ]
    st = replay_status(events)
    assert st.workers_connected == 1
    assert st.tasks_running == 0  # w1's open task fell with the worker
    assert st.workflow_done


def test_format_mentions_the_essentials():
    text = format_log_status(replay_status(_events(), runtime="sim"))
    assert "runtime sim" in text
    assert "1 running, 1 done" in text
    assert "workers connected: 2" in text
    assert "mylib:1" in text


def _chaos_events():
    return _events() + [
        Event(4.0, "fault_injected", worker="w1", category="crash"),
        Event(4.0, "fault_injected", worker="w0", file="f2",
              category="transfer_corrupt"),
        Event(4.1, "worker_leave", worker="w1"),
        Event(4.1, "transfer_failed", worker="w0", file="f2", size=1,
              category="w1"),
        Event(4.2, "task_requeued", task="t2"),
        Event(4.3, "file_regenerated", file="f2", task="t1"),
        Event(4.4, "worker_blocklist", worker="w1"),
    ]


def test_replay_folds_faults_and_recovery():
    st = replay_status(_chaos_events(), runtime="sim")
    assert st.faults_by_category == {"crash": 1, "transfer_corrupt": 1}
    assert st.faults_injected == 2
    assert st.transfers_failed == 1
    assert st.tasks_requeued == 1
    assert st.files_regenerated == 1
    assert st.workers_blocklisted == 1


def test_format_renders_chaos_section_only_when_present():
    quiet = format_log_status(replay_status(_events(), runtime="sim"))
    assert "faults injected" not in quiet
    assert "recovery:" not in quiet
    chaos = format_log_status(replay_status(_chaos_events(), runtime="sim"))
    assert "faults injected: 2 (crash:1  transfer_corrupt:1)" in chaos
    assert (
        "recovery: 1 failed transfers, 1 requeues, "
        "1 regenerations, 1 blocklisted" in chaos
    )


def test_cli_renders_a_log_file(tmp_path, capsys):
    path = str(tmp_path / "txn.jsonl")
    with TransactionLogWriter(path, runtime="sim") as writer:
        for e in _events():
            writer(e)
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "runtime sim" in out
    assert "workers connected: 2" in out


def test_cli_renders_metrics_snapshot(tmp_path, capsys):
    path = str(tmp_path / "txn.jsonl")
    with TransactionLogWriter(path, runtime="real") as writer:
        for e in _events():
            writer(e)
    metrics = tmp_path / "metrics.json"
    metrics.write_text(json.dumps({
        "dumped_at": 0,
        "metrics": {
            "cache.hits": {"type": "counter", "value": 5},
            "queue.ready_depth": {"type": "gauge", "value": 0, "max": 3},
            "pump.latency_seconds": {
                "type": "histogram", "count": 4, "sum": 0.4, "min": 0.05,
                "max": 0.2, "mean": 0.1, "p50": 0.1, "p90": 0.2, "p99": 0.2,
            },
        },
    }))
    assert main([path, "--metrics", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "cache.hits" in out
    assert "queue.ready_depth" in out
    assert "pump.latency_seconds" in out


def test_cli_missing_file_is_an_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.jsonl")]) == 1
    assert "repro-status" in capsys.readouterr().err
