"""The transaction log round-trips the event stream exactly."""

import json

import pytest

from repro.core.events import KINDS, Event, EventLog
from repro.observe.txnlog import (
    HEADER_KIND,
    TXN_SCHEMA_VERSION,
    TransactionLogError,
    TransactionLogWriter,
    event_to_record,
    load_event_log,
    read_transactions,
    record_to_event,
)


def _sample_events():
    return [
        Event(0.0, "worker_join", worker="w0"),
        Event(0.5, "transfer_start", worker="w0", file="f1", size=1000,
              category="manager"),
        Event(1.5, "transfer_end", worker="w0", file="f1", size=1000,
              category="manager"),
        Event(1.6, "file_cached", worker="w0", file="f1", size=1000),
        Event(2.0, "task_start", worker="w0", task="t1", category="analyze"),
        Event(7.0, "task_end", worker="w0", task="t1", category="analyze"),
        Event(8.0, "file_deleted", worker="w0", file="f1", size=1000,
              category="evicted"),
        Event(9.0, "library_ready", worker="w0", category="lib"),
        Event(9.5, "library_failed", worker="w0", category="lib"),
        Event(10.0, "worker_leave", worker="w0"),
        Event(11.0, "workflow_done"),
    ]


def test_record_round_trip_preserves_every_field():
    for event in _sample_events():
        assert record_to_event(event_to_record(event)) == event


def test_writer_then_reader_yields_identical_events(tmp_path):
    path = str(tmp_path / "txn.jsonl")
    events = _sample_events()
    with TransactionLogWriter(path, runtime="test") as writer:
        for event in events:
            writer(event)
    header, parsed = read_transactions(path)
    assert header["v"] == TXN_SCHEMA_VERSION
    assert header["runtime"] == "test"
    assert parsed == events


def test_writer_as_event_log_sink(tmp_path):
    path = str(tmp_path / "txn.jsonl")
    log = EventLog()
    writer = TransactionLogWriter(path, runtime="test")
    log.attach(writer)
    log.emit(1.0, "worker_join", worker="w0")
    log.emit(2.0, "workflow_done")
    writer.close()
    rebuilt = load_event_log(path)
    assert list(rebuilt) == list(log)


def test_header_line_is_first_and_versioned(tmp_path):
    path = str(tmp_path / "txn.jsonl")
    TransactionLogWriter(path, runtime="sim").close()
    first = json.loads(open(path).readline())
    assert first["kind"] == HEADER_KIND
    assert first["v"] == TXN_SCHEMA_VERSION
    assert first["runtime"] == "sim"


def test_extra_header_fields_survive(tmp_path):
    path = str(tmp_path / "txn.jsonl")
    TransactionLogWriter(path, runtime="sim", extra_header={"run": "abc"}).close()
    header, _events = read_transactions(path)
    assert header["run"] == "abc"


def test_torn_final_line_tolerated_but_strict_rejects(tmp_path):
    path = str(tmp_path / "txn.jsonl")
    with TransactionLogWriter(path, runtime="test") as writer:
        writer(Event(1.0, "worker_join", worker="w0"))
    with open(path, "a") as f:
        f.write('{"t": 2.0, "kind": "task_')  # crash mid-write
    _header, events = read_transactions(path)
    assert [e.kind for e in events] == ["worker_join"]
    with pytest.raises(TransactionLogError):
        read_transactions(path, strict=True)


def test_corruption_followed_by_data_always_raises(tmp_path):
    path = str(tmp_path / "txn.jsonl")
    with TransactionLogWriter(path, runtime="test") as writer:
        writer(Event(1.0, "worker_join", worker="w0"))
    with open(path, "a") as f:
        f.write("not json at all\n")
        f.write('{"t": 2.0, "kind": "worker_leave", "worker": "w0"}\n')
    with pytest.raises(TransactionLogError):
        read_transactions(path)


def test_missing_header_rejected(tmp_path):
    path = tmp_path / "txn.jsonl"
    path.write_text('{"t": 1.0, "kind": "worker_join", "worker": "w0"}\n')
    with pytest.raises(TransactionLogError, match="header"):
        read_transactions(str(path))


def test_future_schema_version_rejected(tmp_path):
    path = tmp_path / "txn.jsonl"
    path.write_text(json.dumps({"kind": HEADER_KIND, "v": 999}) + "\n")
    with pytest.raises(TransactionLogError, match="version"):
        read_transactions(str(path))


def test_unknown_kind_rejected():
    with pytest.raises(TransactionLogError, match="kind"):
        record_to_event({"t": 1.0, "kind": "no_such_kind"})


def test_every_declared_kind_round_trips():
    for kind in sorted(KINDS):
        event = Event(3.0, kind, worker="w0")
        assert record_to_event(event_to_record(event)) == event


def test_writer_after_close_is_noop(tmp_path):
    path = str(tmp_path / "txn.jsonl")
    writer = TransactionLogWriter(path, runtime="test")
    writer.close()
    writer(Event(1.0, "worker_join", worker="w0"))  # must not raise
    _header, events = read_transactions(path)
    assert events == []


# ----------------------------------------------------------------------
# multi-segment logs: a recovering manager appends a new @header
# ----------------------------------------------------------------------


def test_resumed_writer_appends_a_segment(tmp_path):
    path = str(tmp_path / "txn.jsonl")
    with TransactionLogWriter(path, runtime="test") as w:
        w(Event(1.0, "task_start", task="t1"))
    with TransactionLogWriter(path, runtime="test", resume=True) as w:
        w(Event(0.5, "manager_restart"))
        w(Event(1.0, "task_end", task="t1"))

    header, events = read_transactions(path)
    # both lives' events read back in file order, across the new header
    assert [e.kind for e in events] == ["task_start", "manager_restart", "task_end"]
    assert header["segments"] == 2
    assert header["torn_lines"] == 0
    # strict mode accepts clean multi-segment files
    header, _ = read_transactions(path, strict=True)
    assert header["segments"] == 2


def test_truncated_log_before_a_resume_segment_is_forgiven(tmp_path):
    """The crash signature: the dying life tore its final line, then the
    next life appended a fresh @header segment right after it."""
    path = str(tmp_path / "txn.jsonl")
    with TransactionLogWriter(path, runtime="test") as w:
        w(Event(1.0, "task_start", task="t1"))
    with open(path, "a") as f:
        f.write('{"t": 2.0, "kind": "task_en')  # kill -9 mid-write
    with TransactionLogWriter(path, runtime="test", resume=True) as w:
        w(Event(0.5, "manager_restart"))

    header, events = read_transactions(path)
    assert [e.kind for e in events] == ["task_start", "manager_restart"]
    assert header["segments"] == 2
    assert header["torn_lines"] == 1
    assert header["resumed"] is True  # the latest segment's header wins
    # strict readers still refuse any tear
    with pytest.raises(TransactionLogError):
        read_transactions(path, strict=True)


def test_torn_line_mid_segment_followed_by_data_raises(tmp_path):
    # forgiveness is only for the line directly before a segment header
    # (crash) or the final line (live tail) — not for arbitrary holes
    path = str(tmp_path / "txn.jsonl")
    with TransactionLogWriter(path, runtime="test") as w:
        w(Event(1.0, "task_start", task="t1"))
    with open(path, "a") as f:
        f.write('{"t": 2.0, "kind": "task_en\n')
        f.write('{"t": 3.0, "kind": "task_end", "task": "t1"}\n')
    with pytest.raises(TransactionLogError):
        read_transactions(path)


def test_resume_onto_missing_file_starts_a_fresh_log(tmp_path):
    path = str(tmp_path / "txn.jsonl")
    with TransactionLogWriter(path, runtime="test", resume=True) as w:
        w(Event(1.0, "worker_join", worker="w0"))
    header, events = read_transactions(path)
    assert header["segments"] == 1
    assert [e.kind for e in events] == ["worker_join"]
