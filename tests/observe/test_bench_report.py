"""BENCH_*.json reports: writing, validation, and the CLI contract."""

import json

import pytest

from repro.observe.bench_report import (
    BENCH_SCHEMA_VERSION,
    BenchReporter,
    main,
    validate_report,
)


def test_write_and_validate_round_trip(tmp_path):
    r = BenchReporter("demo", out_dir=str(tmp_path))
    r.record("makespan_s", 12.5)
    r.record("tasks_done", 100)
    path = r.write()
    payload = validate_report(path)
    assert payload["schema"] == BENCH_SCHEMA_VERSION
    assert payload["metrics"] == {"makespan_s": 12.5, "tasks_done": 100}
    assert payload["wall_time_s"] >= 0


def test_record_rejects_non_numeric_and_non_finite(tmp_path):
    r = BenchReporter("demo", out_dir=str(tmp_path))
    with pytest.raises(TypeError):
        r.record("flag", True)
    with pytest.raises(TypeError):
        r.record("label", "fast")
    with pytest.raises(ValueError):
        r.record("rate", float("inf"))


def test_invalid_name_rejected():
    with pytest.raises(ValueError):
        BenchReporter("has space")
    with pytest.raises(ValueError):
        BenchReporter("has/slash")


def test_validate_rejects_wrong_schema(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({
        "schema": 999, "name": "x", "wall_time_s": 0.1,
        "metrics": {"a": 1},
    }))
    with pytest.raises(ValueError, match="schema"):
        validate_report(str(path))


def test_validate_rejects_name_filename_mismatch(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({
        "schema": BENCH_SCHEMA_VERSION, "name": "y", "wall_time_s": 0.1,
        "metrics": {"a": 1},
    }))
    with pytest.raises(ValueError, match="name"):
        validate_report(str(path))


def test_validate_rejects_empty_or_bad_metrics(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({
        "schema": BENCH_SCHEMA_VERSION, "name": "x", "wall_time_s": 0.1,
        "metrics": {},
    }))
    with pytest.raises(ValueError, match="no metrics"):
        validate_report(str(path))
    path.write_text(json.dumps({
        "schema": BENCH_SCHEMA_VERSION, "name": "x", "wall_time_s": 0.1,
        "metrics": {"a": "fast"},
    }))
    with pytest.raises(ValueError, match="not numeric"):
        validate_report(str(path))


def test_from_stats_records_standard_series(tmp_path):
    class Stats:
        makespan = 40.0
        tasks_done = 10
        transfer_counts = {"manager": 2, "peer": 5}
        bytes_by_source = {"manager": 1e6, "peer": 2.5e6}
        evictions = 1
        log = None

    r = BenchReporter("demo", out_dir=str(tmp_path))
    r.from_stats(Stats(), prefix="run")
    assert r.metrics["run_makespan_s"] == 40.0
    assert r.metrics["run_transfers_peer"] == 5
    assert r.metrics["run_bytes_manager"] == 1e6
    assert r.metrics["run_evictions"] == 1


def test_cli_validates_and_reports_failures(tmp_path, capsys):
    good = BenchReporter("good", out_dir=str(tmp_path))
    good.record("x", 1)
    good_path = good.write()
    bad_path = tmp_path / "BENCH_bad.json"
    bad_path.write_text("{}")
    assert main([good_path]) == 0
    assert main([good_path, str(bad_path)]) == 1
    assert main([]) == 2
