"""Figure 12 — task and worker views of the three example applications.

* a/d: TopEFT — gradual worker arrival, real-data then costlier MC
  processing, accumulations merging partial histograms;
* b/e: Colmena-XTB — a 1.4 GB software tarball seeded from the shared
  filesystem a handful of times and then spread worker-to-worker,
  cutting shared-FS loads from 108 to 3 (105 peer transfers);
* c/f: BGD — 2000 serverless FunctionCalls whose throughput ramps up
  as LibraryTasks finish deploying, peaking once all workers host one.
"""

import bisect
import os

from repro.core.events import completion_series, task_rows
from repro.sim.svgplot import svg_task_view, svg_worker_view
from repro.sim.trace import ascii_task_view, ascii_worker_view
from repro.sim.workloads import bgd_workflow, colmena_workflow, topeft_workflow


def test_fig12ad_topeft_task_and_worker_view(once, bench_report):
    result = once(
        topeft_workflow,
        in_cluster=True,
        n_chunks=256,
        fan_in=4,
        n_workers=64,
        worker_ramp=5.0,  # workers arrive gradually (shared cluster)
        seed=0,
    )
    stats = result.stats
    rows = task_rows(stats.log)
    bench_report.from_stats(stats, prefix="topeft")
    bench_report.record("final_output_bytes", result.final_output_bytes)

    print("\n=== Fig 12 a/d: TopEFT ===")
    print(f"tasks={result.n_tasks} makespan={stats.makespan:.0f}s "
          f"final accumulation={result.final_output_bytes/1e6:.0f}MB")
    print("\ntask view (rows sorted by start; paper Fig 12a):")
    print(ascii_task_view(stats.log, width=72, max_tasks=24))
    print("\nworker view (paper Fig 12d):")
    print(ascii_worker_view(stats.log, width=72, max_workers=12))

    figures = os.path.join(os.path.dirname(__file__), "figures")
    os.makedirs(figures, exist_ok=True)
    svg_task_view(stats.log, os.path.join(figures, "fig12a_topeft_tasks.svg"),
                  title="Fig 12a TopEFT tasks", color_by_category=True)
    svg_worker_view(stats.log, os.path.join(figures, "fig12d_topeft_workers.svg"),
                    title="Fig 12d TopEFT workers")

    # real-data processing precedes the bulk of MC processing and
    # accumulations trail the processors they merge
    by_cat = {}
    for r in rows:
        by_cat.setdefault(r.category, []).append(r)
    assert set(by_cat) >= {"process-data", "process-mc", "accumulate"}
    median = lambda rs: sorted(x.start for x in rs)[len(rs) // 2]
    assert median(by_cat["process-data"]) <= median(by_cat["process-mc"])
    last_accumulate = max(r.end for r in by_cat["accumulate"])
    assert last_accumulate == max(r.end for r in rows)
    # gradual worker arrival is visible as spread-out join times
    joins = [e.time for e in stats.log.events("worker_join")]
    assert max(joins) - min(joins) > 100.0


def test_fig12be_colmena_peer_distribution(once, bench_report):
    def both():
        return (
            colmena_workflow(peer_transfers=True, seed=0),
            colmena_workflow(peer_transfers=False, seed=0),
        )

    with_peers, without_peers = once(both)
    bench_report.record("peers_sharedfs_loads", with_peers.sharedfs_loads)
    bench_report.record("peers_peer_loads", with_peers.peer_loads)
    bench_report.record("peers_makespan_s", with_peers.stats.makespan)
    bench_report.record("nopeers_sharedfs_loads", without_peers.sharedfs_loads)
    bench_report.record("nopeers_makespan_s", without_peers.stats.makespan)

    print("\n=== Fig 12 b/e: Colmena-XTB ===")
    print(f"{'mode':>10s} {'sharedfs loads':>15s} {'peer xfers':>11s} {'makespan':>9s}")
    for label, r in [("peers", with_peers), ("no-peers", without_peers)]:
        print(
            f"{label:>10s} {r.sharedfs_loads:15d} {r.peer_loads:11d} "
            f"{r.stats.makespan:9.0f}"
        )
    print("\nworker view with peer transfers (paper Fig 12e):")
    print(
        ascii_worker_view(
            with_peers.stats.log, width=72, max_workers=12,
        )
    )

    figures = os.path.join(os.path.dirname(__file__), "figures")
    os.makedirs(figures, exist_ok=True)
    svg_worker_view(
        with_peers.stats.log,
        os.path.join(figures, "fig12e_colmena_workers.svg"),
        title="Fig 12e Colmena workers",
    )

    # the paper's headline numbers: shared-FS queries drop from 108 to
    # 3, the remaining 105 served worker-to-worker
    assert without_peers.sharedfs_loads == 108
    assert with_peers.sharedfs_loads == 3
    assert with_peers.peer_loads == 105


def test_fig12cf_bgd_serverless_ramp(once, bench_report):
    result = once(
        bgd_workflow, n_calls=2000, n_workers=200, function_slots=3, seed=0
    )
    stats = result.stats
    bench_report.from_stats(stats, prefix="bgd")
    bench_report.record("first_library_ready_s", result.library_ready_times[0])
    bench_report.record("last_library_ready_s", result.library_ready_times[-1])

    print("\n=== Fig 12 c/f: BGD serverless ===")
    ready = result.library_ready_times
    print(f"libraries ready: first {ready[0]:.0f}s, last {ready[-1]:.0f}s")
    series = completion_series(stats.log, points=12, category="function_call")
    print(f"{'t(s)':>8s} {'calls done':>11s}")
    for t, n in series:
        print(f"{t:8.1f} {n:11d}")
    print("\nworker view (paper Fig 12f):")
    print(ascii_worker_view(stats.log, width=72, max_workers=12))

    figures = os.path.join(os.path.dirname(__file__), "figures")
    os.makedirs(figures, exist_ok=True)
    svg_task_view(stats.log, os.path.join(figures, "fig12c_bgd_tasks.svg"),
                  title="Fig 12c BGD tasks")
    svg_worker_view(stats.log, os.path.join(figures, "fig12f_bgd_workers.svg"),
                    title="Fig 12f BGD workers")

    # every worker eventually hosts a library instance
    assert len(ready) == 200
    # no call starts before its worker's library is up
    assert result.first_call_started >= ready[0]
    # throughput ramps: the per-interval completion rate grows from the
    # deployment phase to the steady state (paper: "exponential
    # increase in FunctionCall throughput from minute 0 to 5")
    counts = [n for _, n in series]
    early_rate = counts[3] - counts[1]
    late_rate = counts[8] - counts[6]
    assert counts[1] <= 200  # almost nothing finishes before deployment
    assert late_rate >= early_rate
    assert counts[-1] == 2000
