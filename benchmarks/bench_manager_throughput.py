"""Manager dispatch throughput: event-driven reactor vs thread-per-worker.

The load generator pre-loads the manager with a deep ready queue, then
lets a fleet of :class:`~repro.worker.scripted.ScriptedWorker` stubs
(hosted in forked processes so the manager's reactor is never starved
of the interpreter by its own load generator) acknowledge every
command instantly.  What is measured is purely the manager's control
path: placement, command serialization, and ingestion of the reply
storm — not sandboxes, not subprocess startup.

This is the regime the paper's manager lives in (§3: thousands of
queued tasks against hundreds of workers), and it is exactly where the
historical thread-per-connection receive path collapses: every one of
the K notices a task produces triggers a synchronous scheduling pump
that scans the ready backlog and rebuilds placement state, so the
manager spends its core re-deriving the same "cluster is saturated"
answer K times per task.  The reactor ingests a whole readiness sweep
before pumping once, and workers coalesce their notices into ``batch``
envelopes, so the same storm costs one frame and one pump per sweep.

The report decomposes the two levers at 64 workers: the batch envelope
alone (old threaded manager, batching workers) and the reactor alone
(event-driven manager, unbatched workers).
"""

import multiprocessing as mp
import time

from repro.core.manager import Manager
from repro.core.task import Task

#: fork, not spawn: worker hosts must come up in milliseconds, since
#: dispatch starts the moment the first one connects
_CTX = mp.get_context("fork")

N_TASKS = 400
N_OUTPUTS = 3  # temp outputs per task -> cache_update notices per task
CORES = 4
WORKERS_PER_HOST = 16
SCALES = (1, 16, 64, 128)
SPEEDUP_FLOOR = 3.0  # acceptance: reactor >= 3x threads at 64+ workers


def _host_main(host, port, n, batch_delay, stop_evt):
    from repro.worker.scripted import ScriptedWorker

    workers = [
        ScriptedWorker(host, port, cores=CORES, batch_delay=batch_delay)
        for _ in range(n)
    ]
    stop_evt.wait()
    for w in workers:
        w.close(timeout=1)


def _drain_once(n_workers, network, batch_delay):
    """One pre-loaded drain; returns tasks completed per wall second.

    The clock starts before the first worker host is forked and stops
    when the queue drains: connect-time dispatch is dispatch too, and
    both implementations pay the identical fork cost.
    """
    m = Manager(network=network, worker_liveness_timeout=None)
    try:
        for _ in range(N_TASKS):
            t = Task("noop")
            for j in range(N_OUTPUTS):
                t.add_output(m.declare_temp(), f"out{j}")
            m.submit(t)
        stop_evt = _CTX.Event()
        hosts = []
        started = time.perf_counter()
        left = n_workers
        while left > 0:
            n = min(WORKERS_PER_HOST, left)
            left -= n
            p = _CTX.Process(
                target=_host_main,
                args=(m.host, m.port, n, batch_delay, stop_evt),
                daemon=True,
            )
            p.start()
            hosts.append(p)
        m.run_until_done(timeout=600)
        elapsed = time.perf_counter() - started
    finally:
        m.close(shutdown_workers=False)
    stop_evt.set()
    for p in hosts:
        p.join(timeout=10)
    return N_TASKS / elapsed


def _throughput(n_workers, network, batch_delay, reps=1):
    """Best-of-``reps`` throughput: contention noise only ever subtracts."""
    return max(_drain_once(n_workers, network, batch_delay) for _ in range(reps))


def test_manager_throughput(once, bench_report):
    def grid():
        out = {}
        for w in SCALES:
            reps = 2 if w >= 64 else 1
            out[w] = {
                "reactor": _throughput(w, "reactor", 0.002, reps),
                "threads": _throughput(w, "threads", 0.0, reps),
            }
        # lever decomposition at 64 workers
        out["levers"] = {
            "reactor_nobatch": _throughput(64, "reactor", 0.0),
            "threads_batch": _throughput(64, "threads", 0.002),
        }
        return out

    results = once(grid)

    bench_report.record_many(
        {"n_tasks": N_TASKS, "n_outputs": N_OUTPUTS, "cores": CORES}
    )
    print(f"\ndispatch throughput, {N_TASKS} pre-loaded tasks "
          f"x {N_OUTPUTS} outputs:")
    for w in SCALES:
        r, t = results[w]["reactor"], results[w]["threads"]
        speedup = r / t
        bench_report.record_many(
            {
                f"reactor_tasks_per_sec_{w}w": round(r, 1),
                f"threaded_tasks_per_sec_{w}w": round(t, 1),
                f"speedup_{w}w": round(speedup, 2),
            }
        )
        print(f"  {w:4d} workers: reactor {r:8.1f}/s   "
              f"threads {t:8.1f}/s   speedup {speedup:5.2f}x")
    bench_report.record_many(
        {
            "reactor_nobatch_tasks_per_sec_64w": round(
                results["levers"]["reactor_nobatch"], 1
            ),
            "threaded_batch_tasks_per_sec_64w": round(
                results["levers"]["threads_batch"], 1
            ),
        }
    )

    for w in SCALES:
        if w >= 64:
            speedup = results[w]["reactor"] / results[w]["threads"]
            assert speedup >= SPEEDUP_FLOOR, (
                f"reactor speedup {speedup:.2f}x at {w} workers "
                f"is below the {SPEEDUP_FLOOR}x floor"
            )
