"""Manager dispatch throughput: event-driven reactor vs thread-per-worker.

The load generator pre-loads the manager with a deep ready queue, then
lets a fleet of :class:`~repro.worker.scripted.ScriptedWorker` stubs
(hosted in forked processes so the manager's reactor is never starved
of the interpreter by its own load generator) acknowledge every
command instantly.  What is measured is purely the manager's control
path: placement, command serialization, and ingestion of the reply
storm — not sandboxes, not subprocess startup.

This is the regime the paper's manager lives in (§3: thousands of
queued tasks against hundreds of workers), and it is exactly where the
historical thread-per-connection receive path collapses: every one of
the K notices a task produces triggers a synchronous scheduling pump
that scans the ready backlog and rebuilds placement state, so the
manager spends its core re-deriving the same "cluster is saturated"
answer K times per task.  The reactor ingests a whole readiness sweep
before pumping once, and workers coalesce their notices into ``batch``
envelopes, so the same storm costs one frame and one pump per sweep.

The report decomposes the two levers at 64 workers: the batch envelope
alone (old threaded manager, batching workers) and the reactor alone
(event-driven manager, unbatched workers).
"""

import multiprocessing as mp
import threading
import time

from repro.core.manager import Manager
from repro.core.task import Task
from repro.service.client import ServiceClient

#: fork, not spawn: worker hosts must come up in milliseconds, since
#: dispatch starts the moment the first one connects
_CTX = mp.get_context("fork")

N_TASKS = 400
N_OUTPUTS = 3  # temp outputs per task -> cache_update notices per task
CORES = 4
WORKERS_PER_HOST = 16
SCALES = (1, 16, 64, 128)
SPEEDUP_FLOOR = 3.0  # acceptance: reactor >= 3x threads at 64+ workers


def _host_main(host, port, n, batch_delay, stop_evt):
    from repro.worker.scripted import ScriptedWorker

    workers = [
        ScriptedWorker(host, port, cores=CORES, batch_delay=batch_delay)
        for _ in range(n)
    ]
    stop_evt.wait()
    for w in workers:
        w.close(timeout=1)


def _drain_once(n_workers, network, batch_delay):
    """One pre-loaded drain; returns tasks completed per wall second.

    The clock starts before the first worker host is forked and stops
    when the queue drains: connect-time dispatch is dispatch too, and
    both implementations pay the identical fork cost.
    """
    m = Manager(network=network, worker_liveness_timeout=None)
    try:
        for _ in range(N_TASKS):
            t = Task("noop")
            for j in range(N_OUTPUTS):
                t.add_output(m.declare_temp(), f"out{j}")
            m.submit(t)
        stop_evt = _CTX.Event()
        hosts = []
        started = time.perf_counter()
        left = n_workers
        while left > 0:
            n = min(WORKERS_PER_HOST, left)
            left -= n
            p = _CTX.Process(
                target=_host_main,
                args=(m.host, m.port, n, batch_delay, stop_evt),
                daemon=True,
            )
            p.start()
            hosts.append(p)
        m.run_until_done(timeout=600)
        elapsed = time.perf_counter() - started
    finally:
        m.close(shutdown_workers=False)
    stop_evt.set()
    for p in hosts:
        p.join(timeout=10)
    return N_TASKS / elapsed


def _throughput(n_workers, network, batch_delay, reps=1):
    """Best-of-``reps`` throughput: contention noise only ever subtracts."""
    return max(_drain_once(n_workers, network, batch_delay) for _ in range(reps))


def test_manager_throughput(once, bench_report):
    def grid():
        out = {}
        for w in SCALES:
            reps = 2 if w >= 64 else 1
            out[w] = {
                "reactor": _throughput(w, "reactor", 0.002, reps),
                "threads": _throughput(w, "threads", 0.0, reps),
            }
        # lever decomposition at 64 workers
        out["levers"] = {
            "reactor_nobatch": _throughput(64, "reactor", 0.0),
            "threads_batch": _throughput(64, "threads", 0.002),
        }
        return out

    results = once(grid)

    bench_report.record_many(
        {"n_tasks": N_TASKS, "n_outputs": N_OUTPUTS, "cores": CORES}
    )
    print(f"\ndispatch throughput, {N_TASKS} pre-loaded tasks "
          f"x {N_OUTPUTS} outputs:")
    for w in SCALES:
        r, t = results[w]["reactor"], results[w]["threads"]
        speedup = r / t
        bench_report.record_many(
            {
                f"reactor_tasks_per_sec_{w}w": round(r, 1),
                f"threaded_tasks_per_sec_{w}w": round(t, 1),
                f"speedup_{w}w": round(speedup, 2),
            }
        )
        print(f"  {w:4d} workers: reactor {r:8.1f}/s   "
              f"threads {t:8.1f}/s   speedup {speedup:5.2f}x")
    bench_report.record_many(
        {
            "reactor_nobatch_tasks_per_sec_64w": round(
                results["levers"]["reactor_nobatch"], 1
            ),
            "threaded_batch_tasks_per_sec_64w": round(
                results["levers"]["threads_batch"], 1
            ),
        }
    )

    for w in SCALES:
        if w >= 64:
            speedup = results[w]["reactor"] / results[w]["threads"]
            assert speedup >= SPEEDUP_FLOOR, (
                f"reactor speedup {speedup:.2f}x at {w} workers "
                f"is below the {SPEEDUP_FLOOR}x floor"
            )


# ---------------------------------------------------------------------------
# service mode: four tenants against one always-on manager
# ---------------------------------------------------------------------------

N_TENANTS = 4
FLOOD_TASKS = 600   # tenant t0 pre-loads this many
SMALL_TASKS = 50    # tenants t1..t3 each submit this many afterwards
SERVICE_WORKERS = 16
DAG_CHUNK = 100
FAIRNESS_CEIL = 0.8  # fair-share small-tenant makespan vs FIFO-starved


def _service_drain(fair_share):
    """Four client sessions drain against one service-mode manager.

    Tenant ``t0`` floods the queue over its session first; the three
    small tenants then submit their batches, so under FIFO they queue
    behind the entire flood while deficit round-robin interleaves them
    at the head.  Workers are the same instant-ack ScriptedWorker fleet
    as the dispatch benchmark.  Returns (per-tenant makespans,
    aggregate tasks/sec).
    """
    m = Manager(network="reactor", worker_liveness_timeout=None,
                fair_share=fair_share)
    hosts, stop_evt = [], _CTX.Event()
    try:
        clients = {}
        for i in range(N_TENANTS):
            name = f"t{i}"
            clients[name] = ServiceClient(m.host, m.port, name, timeout=600)
        spec = {"command": "noop", "inputs": [], "outputs": ["out0"]}
        for left in range(0, FLOOD_TASKS, DAG_CHUNK):
            clients["t0"].submit_dag([spec] * min(DAG_CHUNK, FLOOD_TASKS - left))
        for i in range(1, N_TENANTS):
            clients[f"t{i}"].submit_dag([spec] * SMALL_TASKS)

        started = time.perf_counter()
        left = SERVICE_WORKERS
        while left > 0:
            n = min(WORKERS_PER_HOST, left)
            left -= n
            p = _CTX.Process(
                target=_host_main,
                args=(m.host, m.port, n, 0.002, stop_evt),
                daemon=True,
            )
            p.start()
            hosts.append(p)

        makespans = {}

        def drain(name):
            clients[name].run_until_done(timeout=600)
            makespans[name] = time.perf_counter() - started

        threads = [
            threading.Thread(target=drain, args=(name,)) for name in clients
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = max(makespans.values())
        for c in clients.values():
            c.close()
    finally:
        m.close(shutdown_workers=False)
        stop_evt.set()
        for p in hosts:
            p.join(timeout=10)
    total = FLOOD_TASKS + (N_TENANTS - 1) * SMALL_TASKS
    return makespans, total / elapsed


def test_multi_tenant_service(once, bench_report):
    def grid():
        return {
            "fair": _service_drain(fair_share=True),
            "fifo": _service_drain(fair_share=False),
        }

    results = once(grid)
    fair_ms, fair_tput = results["fair"]
    fifo_ms, fifo_tput = results["fifo"]
    small = [f"t{i}" for i in range(1, N_TENANTS)]
    fair_small = sum(fair_ms[n] for n in small) / len(small)
    fifo_small = sum(fifo_ms[n] for n in small) / len(small)

    bench_report.record_many(
        {
            "n_tenants": N_TENANTS,
            "flood_tasks": FLOOD_TASKS,
            "small_tasks_per_tenant": SMALL_TASKS,
            "service_workers": SERVICE_WORKERS,
            # fair-share lever decomposition: the one knob flipped
            # between the two runs is the queue discipline
            "fair_tasks_per_sec": round(fair_tput, 1),
            "fifo_tasks_per_sec": round(fifo_tput, 1),
            "fair_small_tenant_makespan_s": round(fair_small, 3),
            "fifo_small_tenant_makespan_s": round(fifo_small, 3),
            "fair_flood_makespan_s": round(fair_ms["t0"], 3),
            "fifo_flood_makespan_s": round(fifo_ms["t0"], 3),
            "small_tenant_speedup": round(fifo_small / fair_small, 2),
        }
    )
    print(f"\nservice mode, {N_TENANTS} tenants "
          f"({FLOOD_TASKS} flood + 3x{SMALL_TASKS} small), "
          f"{SERVICE_WORKERS} workers:")
    print(f"  aggregate: fair {fair_tput:8.1f}/s   fifo {fifo_tput:8.1f}/s")
    print(f"  small-tenant makespan: fair {fair_small:6.3f}s   "
          f"fifo {fifo_small:6.3f}s   "
          f"speedup {fifo_small / fair_small:5.2f}x")

    # fair-share must rescue the small tenants from the flood without
    # tanking aggregate throughput
    assert fair_small <= FAIRNESS_CEIL * fifo_small, (
        f"fair-share small-tenant makespan {fair_small:.3f}s is not "
        f"meaningfully below FIFO's {fifo_small:.3f}s"
    )
    assert fair_tput >= 0.5 * fifo_tput
