"""Result plane cost on the real runtime: inline payloads vs proxies.

A serverless map→reduce where every map emits a quarter-megabyte part
and the reduce digests them.  Run once with inline call results (every
part rides its ``task_done`` reply through the manager, and the reduce
arguments carry the parts back out again) and once by reference (parts
stay in worker caches, the reduce consumes them as declared inputs,
and only the final digest crosses the fetch plane when dereferenced).

The headline lever is result-payload bytes moved through the manager:
by-reference must cut it by at least an order of magnitude while the
final value stays byte-identical.
"""

import multiprocessing as mp
import time

from repro.core.library import FunctionCall
from repro.core.manager import Manager
from repro.core.task import TaskState

_CTX = mp.get_context("spawn")

N_PARTS = 8
PART_BYTES = 256 * 1024


def _worker_main(host, port, workdir):
    from repro.worker.worker import Worker

    Worker(host, port, workdir, cores=4, memory=2000, disk=4000,
           task_timeout=120.0).run()


def _start_workers(m, workdirs):
    procs = []
    for wd in workdirs:
        p = _CTX.Process(target=_worker_main, args=(m.host, m.port, wd))
        p.start()
        procs.append(p)
    deadline = time.time() + 30
    while time.time() < deadline:
        with m._lock:
            if len(m.workers) >= len(workdirs):
                return procs
        time.sleep(0.05)
    raise TimeoutError("workers did not register")


def _stop(m, procs):
    m.close(shutdown_workers=True)
    for p in procs:
        p.join(timeout=10)
        if p.is_alive():
            p.terminate()


def _part(i, n):
    return bytes([i % 251]) * n


def _digest(parts):
    import hashlib

    joined = b"".join(parts)
    return f"{hashlib.md5(joined).hexdigest()}:{len(joined)}"


def _map_reduce(tmp_path, label, by_reference):
    """One full map→reduce run; returns (value, elapsed, manager_bytes)."""
    m = Manager(inline_call_results=not by_reference)
    workdirs = [str(tmp_path / f"{label}-w{i}") for i in range(2)]
    procs = _start_workers(m, workdirs)
    try:
        started = time.monotonic()
        m.create_library("mapred", [_part, _digest], function_slots=2)
        m.install_library("mapred")
        maps = [FunctionCall("mapred", "_part", i, PART_BYTES) for i in range(N_PARTS)]
        for fc in maps:
            if by_reference:
                fc.set_by_reference()
            m.submit(fc)
        m.run_until_done(timeout=120)
        assert all(fc.state == TaskState.DONE for fc in maps)
        parts = [fc.output() for fc in maps]

        reduce_fc = FunctionCall("mapred", "_digest", parts)
        if by_reference:
            reduce_fc.set_by_reference()
        m.submit(reduce_fc)
        m.run_until_done(timeout=120)
        assert reduce_fc.state == TaskState.DONE
        out = reduce_fc.output()
        value = out.resolve() if by_reference else out
        elapsed = time.monotonic() - started

        # result payloads through the manager: inline replies ride the
        # retrieve channel, dereferences ride the fetch plane
        manager_bytes = (
            m.control.bytes_by_source.get("retrieve", 0)
            + m.control.bytes_by_source.get("fetch", 0)
        )
        return value, elapsed, manager_bytes
    finally:
        _stop(m, procs)


def test_result_proxy(tmp_path, bench_report, benchmark):
    inline_value, inline_s, inline_bytes = _map_reduce(
        tmp_path, "inline", by_reference=False
    )

    def byref_run():
        return _map_reduce(tmp_path, "byref", by_reference=True)

    byref_value, byref_s, byref_bytes = benchmark.pedantic(
        byref_run, iterations=1, rounds=1
    )

    assert byref_value == inline_value  # byte-identical final result
    ratio = inline_bytes / max(1, byref_bytes)
    bench_report.record("inline_manager_bytes", inline_bytes)
    bench_report.record("byref_manager_bytes", byref_bytes)
    bench_report.record("manager_bytes_ratio", round(ratio, 1))
    bench_report.record("inline_elapsed_s", round(inline_s, 2))
    bench_report.record("byref_elapsed_s", round(byref_s, 2))
    print(
        f"\nresult plane: inline {inline_bytes / 1e6:.2f} MB through the "
        f"manager vs by-reference {byref_bytes / 1e3:.1f} KB "
        f"({ratio:.0f}x reduction), value {byref_value!r}"
    )
    # the paper's lever: results by reference stop shipping payloads
    # through the manager
    assert ratio >= 10


if __name__ == "__main__":
    import sys
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        iv, is_, ib = _map_reduce(root, "inline", by_reference=False)
        bv, bs, bb = _map_reduce(root, "byref", by_reference=True)
        print(f"inline: {ib} bytes via manager in {is_:.2f}s -> {iv}")
        print(f"byref:  {bb} bytes via manager in {bs:.2f}s -> {bv}")
        sys.exit(0 if bv == iv and ib >= 10 * max(1, bb) else 1)
