"""Figure 13 — TopEFT on shared storage vs in-cluster storage.

Paper: two TopEFT runs (~27K tasks).  With all output files brought
back to the manager before accumulation (shared storage, Fig 13a), the
repeated transfer of growing results bottlenecks the system, with a
visible delay in data retrieval near the end.  Keeping histograms as
ephemeral TempFiles at the workers (Fig 13b) removes the round trips
and the workflow concludes rapidly.

The bench runs both modes over the same reduction tree, on a manager
whose head-node link is 1 GbE (the realistic shared-storage funnel).
"""

import os

from repro.core.events import task_rows
from repro.sim.svgplot import svg_task_view
from repro.sim.trace import ascii_task_view
from repro.sim.workloads import topeft_workflow

PARAMS = dict(
    n_chunks=256,
    fan_in=4,
    n_workers=64,
    hist_mb=25.0,
    growth=4.0,
    process_time=20.0,
    manager_bps=0.125e9,  # 1 GbE head-node link
    seed=0,
)


def _both_modes():
    in_cluster = topeft_workflow(in_cluster=True, **PARAMS)
    shared = topeft_workflow(in_cluster=False, **PARAMS)
    return in_cluster, shared


def test_fig13_shared_vs_in_cluster_storage(once, bench_report):
    in_cluster, shared = once(_both_modes)

    def tail(result):
        """Time between the last task ending and the workflow finishing
        (the data-retrieval delay of Fig 13a)."""
        last_end = max(r.end for r in task_rows(result.stats.log))
        return result.stats.finished - last_end

    bench_report.from_stats(in_cluster.stats, prefix="in_cluster")
    bench_report.from_stats(shared.stats, prefix="shared")
    bench_report.record("in_cluster_tail_s", tail(in_cluster))
    bench_report.record("shared_tail_s", tail(shared))

    print("\n=== Fig 13: TopEFT shared storage vs in-cluster storage ===")
    print(f"{'mode':>12s} {'makespan(s)':>12s} {'retrievals':>11s} {'GB via mgr':>11s} {'tail(s)':>8s}")
    for label, r in [("in-cluster", in_cluster), ("shared", shared)]:
        retrieved = r.stats.transfer_counts.get("retrieve", 0)
        gb = r.stats.bytes_by_source.get("retrieve", 0) / 1e9
        print(
            f"{label:>12s} {r.stats.makespan:12.1f} {retrieved:11d} "
            f"{gb:11.1f} {tail(r):8.1f}"
        )
    print("\nin-cluster task view (paper Fig 13b — rapid conclusion):")
    print(ascii_task_view(in_cluster.stats.log, width=72, max_tasks=20))

    figures = os.path.join(os.path.dirname(__file__), "figures")
    os.makedirs(figures, exist_ok=True)
    svg_task_view(in_cluster.stats.log,
                  os.path.join(figures, "fig13b_incluster_tasks.svg"),
                  title="Fig 13b in-cluster storage", color_by_category=True)
    svg_task_view(shared.stats.log,
                  os.path.join(figures, "fig13a_shared_tasks.svg"),
                  title="Fig 13a shared storage", color_by_category=True)

    # paper claims: in-cluster temp files eliminate the manager round
    # trips entirely and the workflow concludes without the retrieval
    # delay that shared storage shows near the end
    assert in_cluster.stats.transfer_counts.get("retrieve", 0) == 0
    assert shared.stats.transfer_counts.get("retrieve", 0) == in_cluster.n_tasks
    assert shared.stats.makespan > in_cluster.stats.makespan * 1.1
    assert tail(shared) > tail(in_cluster) + 5.0


def test_fig13_growth_sensitivity(once, bench_report):
    """Ablation: the shared-storage penalty grows with accumulation size."""

    def sweep():
        ratios = []
        for growth in (2.0, 3.0, 4.0):
            params = dict(PARAMS, growth=growth)
            a = topeft_workflow(in_cluster=True, **params)
            b = topeft_workflow(in_cluster=False, **params)
            ratios.append((growth, b.stats.makespan / a.stats.makespan))
        return ratios

    ratios = once(sweep)
    for growth, ratio in ratios:
        bench_report.record(f"slowdown_at_growth_{growth:g}", ratio)
    print("\naccumulation growth vs shared-storage slowdown:")
    print(f"{'growth':>8s} {'shared/in-cluster':>18s}")
    for growth, ratio in ratios:
        print(f"{growth:8.1f} {ratio:18.2f}")
    assert all(r >= 1.0 for _, r in ratios)
    assert ratios[-1][1] > ratios[0][1]  # bigger outputs → bigger penalty


def test_fig13_growth_is_physical(once):
    """Ground the growth knob in the substrate: accumulated histogram
    sets (with EFT weight variations, as TopEFT fills) really do grow
    as distinct datasets and variations merge up the tree."""

    def measure():
        from repro.apps.minihist import (
            WeightSurface,
            accumulate,
            coupling_scan,
            generate_batch,
            process_with_variations,
        )

        scan = coupling_scan(n_couplings=4, points_per_axis=3)
        datasets = ["data", "ttbar", "wjets", "zjets", "single-top",
                    "diboson", "ttH", "tttt"]
        partials = []
        for i, ds in enumerate(datasets):
            batch = generate_batch(ds, 2000, seed=i)
            surface = WeightSurface.for_batch(batch, seed=i)
            partials.append(process_with_variations(batch, surface, scan))
        sizes = [len(partials[0].to_bytes())]
        level = partials
        while len(level) > 1:
            level = [
                accumulate(level[j : j + 2]) for j in range(0, len(level), 2)
            ]
            sizes.append(len(level[0].to_bytes()))
        return sizes

    sizes = once(measure)
    print("\naccumulation sizes up the tree (bytes):", sizes)
    # each merge level unions more (dataset, variation) keys: strictly growing
    assert all(b > a for a, b in zip(sizes, sizes[1:]))
    # and the final accumulation is much larger than one partial —
    # the physical basis of Fig 13's "growing accumulations"
    assert sizes[-1] > 4 * sizes[0]
