"""Chaos benchmark — the price of recovery under a hostile fault plan.

The same two-stage DAG runs twice on the simulated cluster: once
fault-free, once under a :class:`FaultPlan` that kills half the
workers, throttles a link, and corrupts or drops a fraction of
transfers.  Both runs must finish with every task DONE; the report
captures the makespan overhead recovery costs and how much recovery
machinery (requeues, regenerations, failed transfers) the plan forced.
"""

from repro.core.task import Task, TaskState
from repro.faults import FaultPlan, SimFaultInjector
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

MB = 1_000_000
PARAMS = dict(n_workers=8, n_stage=16, seed=20230601)


def _plan(seed):
    return (
        FaultPlan(seed=seed)
        .crash("w0", at=2.0)
        .crash("w1", after_tasks=2)
        .disconnect("w2", at=3.0)
        .degrade_link("w3", at=1.0, factor=0.25)
        .fail_transfers("any", 0.08)
        .corrupt_transfers("peer", 0.10)
    )


def _run(with_faults):
    cluster = SimCluster()
    for i in range(PARAMS["n_workers"]):
        cluster.add_worker(cores=4, worker_id=f"w{i}")
    m = SimManager(cluster, seed=PARAMS["seed"], max_task_retries=10)
    if with_faults:
        SimFaultInjector(_plan(PARAMS["seed"]), m)
    shared = m.declare_dataset("shared", MB)
    temps, tasks = [], []
    n = PARAMS["n_stage"]
    for i in range(n):
        temp = m.declare_temp()
        t = Task(f"produce{i}").add_input(shared, "d").add_output(temp, "out")
        m.submit(t, duration=1.0, output_sizes={"out": MB})
        temps.append(temp)
        tasks.append(t)
    for i in range(n):
        t = (
            Task(f"consume{i}")
            .add_input(temps[i], "a")
            .add_input(temps[(i + 5) % n], "b")
        )
        m.submit(t, duration=1.0)
        tasks.append(t)
    stats = m.run()
    assert all(t.state == TaskState.DONE for t in tasks)
    return m, stats


def test_chaos_recovery_overhead(once, bench_report):
    (clean_m, clean), (chaos_m, chaos) = once(
        lambda: (_run(with_faults=False), _run(with_faults=True))
    )
    bench_report.from_stats(clean, prefix="clean")
    bench_report.from_stats(chaos, prefix="chaos")
    bench_report.record("makespan_overhead", chaos.makespan / clean.makespan)
    bench_report.record_many({
        "faults_injected": chaos_m.metrics.counter("faults.injected").value,
        "transfers_failed": chaos_m.metrics.counter("transfers.failed").value,
        "transfers_corrupt": chaos_m.metrics.counter("transfers.corrupt").value,
        "recovery_requeues": chaos_m.metrics.counter("recovery.requeues").value,
        "recovery_regenerations": chaos_m.metrics.counter(
            "recovery.regenerations").value,
        "workers_blocklisted": chaos_m.metrics.counter(
            "workers.blocklisted").value,
    })

    faults = chaos.log.events("fault_injected")
    print("\n=== Chaos: recovery overhead under a hostile fault plan ===")
    print(f"{'run':>8s} {'makespan(s)':>12s} {'faults':>8s} {'requeues':>9s}")
    print(f"{'clean':>8s} {clean.makespan:12.1f} {0:8d} {0:9d}")
    print(
        f"{'chaos':>8s} {chaos.makespan:12.1f} {len(faults):8d} "
        f"{int(chaos_m.metrics.counter('recovery.requeues').value):9d}"
    )

    # recovery is not free, but it converges: the chaotic run completes
    # every task while paying a bounded makespan premium
    assert not clean.log.events("fault_injected")
    assert faults, "the hostile plan must actually fire"
    assert chaos.makespan > clean.makespan
    assert chaos.log.events()[-1].kind == "workflow_done"


def _elastic_plan(seed):
    """The hostile plan plus membership churn: a mid-run join that is
    itself crashed shortly after, and a graceful drain racing the chaos."""
    return (
        _plan(seed)
        .join("w8", at=1.5)
        .drain("w4", at=2.5)
        .crash("w8", at=4.0)
    )


def test_chaos_elastic_membership(once, bench_report):
    def _chaos_elastic():
        cluster = SimCluster()
        for i in range(PARAMS["n_workers"]):
            cluster.add_worker(cores=4, worker_id=f"w{i}")
        m = SimManager(cluster, seed=PARAMS["seed"], max_task_retries=10)
        SimFaultInjector(_elastic_plan(PARAMS["seed"]), m)
        shared = m.declare_dataset("shared", MB)
        temps, tasks = [], []
        n = PARAMS["n_stage"]
        for i in range(n):
            temp = m.declare_temp()
            t = Task(f"produce{i}").add_input(shared, "d").add_output(temp, "out")
            m.submit(t, duration=1.0, output_sizes={"out": MB})
            temps.append(temp)
            tasks.append(t)
        for i in range(n):
            t = (
                Task(f"consume{i}")
                .add_input(temps[i], "a")
                .add_input(temps[(i + 5) % n], "b")
            )
            m.submit(t, duration=1.0)
            tasks.append(t)
        stats = m.run()
        assert all(t.state == TaskState.DONE for t in tasks)
        return m, stats

    m, stats = once(_chaos_elastic)
    bench_report.from_stats(stats, prefix="chaos_elastic")
    bench_report.record_many({
        "drains_started": m.metrics.counter("elastic.drains_started").value,
        "drains_completed": m.metrics.counter("elastic.drains_completed").value,
        "drain_bytes": m.metrics.counter("elastic.drain_bytes_replicated").value,
        "recovery_requeues": m.metrics.counter("recovery.requeues").value,
        "recovery_regenerations": m.metrics.counter(
            "recovery.regenerations").value,
    })

    # membership churn rode along with the chaos and both resolved:
    # every drain ordered completed, and the run still converged
    events = stats.log.events()
    assert len(stats.log.events("worker_drain")) == len(
        stats.log.events("worker_drained")
    ) == 1
    joins = [e for e in events if e.kind == "worker_join" and e.worker == "w8"]
    assert joins, "the scheduled join must have materialized"
    assert events[-1].kind == "workflow_done"
