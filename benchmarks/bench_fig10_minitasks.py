"""Figure 10 — independent tasks vs shared mini-tasks.

Paper: 1000 tasks, each sleeping 10 s but depending on a 610 MB Python
environment, on 50 4-core workers.  When every task expands the
environment itself (Fig 10a), unpacking dominates; when a shared mini
task expands it once per worker (Fig 10b), each task reuses the staged
environment and total runtime drops substantially.
"""

from repro.sim.trace import ascii_worker_view
from repro.sim.workloads import envshare_workflow

PARAMS = dict(n_tasks=1000, n_workers=50, cores=4, env_mb=610,
              unpack_time=30.0, task_time=10.0)


def _both_modes():
    independent = envshare_workflow(shared=False, **PARAMS)
    shared = envshare_workflow(shared=True, **PARAMS)
    return independent, shared


def test_fig10_shared_minitasks_vs_independent(once, bench_report):
    independent, shared = once(_both_modes)
    bench_report.from_stats(independent, prefix="independent")
    bench_report.from_stats(shared, prefix="shared")
    bench_report.record("speedup", independent.makespan / shared.makespan)

    print("\n=== Fig 10: independent tasks vs shared mini-tasks ===")
    print(f"{'mode':>12s} {'makespan(s)':>12s} {'unpacks':>8s}")
    # independent mode unpacks inside each task; count = task count
    print(f"{'independent':>12s} {independent.makespan:12.1f} {PARAMS['n_tasks']:8d}")
    print(
        f"{'shared':>12s} {shared.makespan:12.1f} "
        f"{shared.transfer_counts.get('stage', 0):8d}"
    )
    print("\nshared-mode worker view (paper Fig 10b):")
    print(
        ascii_worker_view(
            shared.log, width=72, t0=shared.started,
            horizon=shared.finished, max_workers=10,
        )
    )

    # paper claim: sharing the unpacked environment substantially
    # reduces execution time; the unpack happens once per worker
    assert shared.transfer_counts.get("stage", 0) == PARAMS["n_workers"]
    # steady-state is (10+30)/10 = 4x, but both runs share the same
    # ~25 s tarball distribution and the shared run pays one 30 s
    # unpack per worker up front, landing the end-to-end gap near 2x —
    # the magnitude Fig 10 shows
    assert shared.makespan < independent.makespan / 2
