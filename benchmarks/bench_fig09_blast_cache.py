"""Figure 9 — BLAST workflow with cold and hot persistent caches.

Paper: executing the BLAST workflow on 100 4-core workers, a cold
cluster cache spends roughly a quarter of total execution time
transferring and staging assets; a second (hot-cache) run removes that
startup overhead entirely, because the software and database tarballs
are ``worker``-lifetime objects with content-addressable names.

This bench runs the same workflow twice against one simulated cluster
and reports both runs' makespans, transfer/stage activity, and the
worker-view time decomposition.
"""

import os

from repro.core.events import worker_busy
from repro.sim.svgplot import svg_worker_view
from repro.sim.trace import ascii_worker_view, run_summary
from repro.sim.workloads import blast_cluster, blast_workflow

N_WORKERS = 100
N_TASKS = 1000


def _cold_and_hot():
    cluster = blast_cluster(n_workers=N_WORKERS)
    cold = blast_workflow(cluster, n_tasks=N_TASKS, seed=0)
    hot = blast_workflow(cluster, n_tasks=N_TASKS, seed=1)
    return cold, hot


def test_fig09_blast_cold_vs_hot_cache(once, bench_report):
    cold, hot = once(_cold_and_hot)

    def overhead_fraction(stats):
        busy = worker_busy(stats.log)
        staging = sum(b.transferring + b.staging for b in busy.values())
        executing = sum(b.executing for b in busy.values())
        return staging / (staging + executing)

    cold_overhead = overhead_fraction(cold)
    hot_overhead = overhead_fraction(hot)
    bench_report.from_stats(cold, prefix="cold")
    bench_report.from_stats(hot, prefix="hot")
    bench_report.record("cold_overhead_fraction", cold_overhead)
    bench_report.record("hot_overhead_fraction", hot_overhead)

    print("\n=== Fig 9: BLAST cold vs hot cache ===")
    print(f"{'run':>6s} {'makespan(s)':>12s} {'url xfers':>10s} {'stages':>8s} {'overhead':>9s}")
    for label, stats, ovh in [("cold", cold, cold_overhead), ("hot", hot, hot_overhead)]:
        print(
            f"{label:>6s} {stats.makespan:12.1f} "
            f"{stats.transfer_counts.get('url', 0):10d} "
            f"{stats.transfer_counts.get('stage', 0):8d} {ovh:9.1%}"
        )
    print("\ncold-cache worker view (paper Fig 9a):")
    print(ascii_worker_view(cold.log, width=72, t0=cold.started, horizon=cold.finished, max_workers=12))
    print("\nhot-cache worker view (paper Fig 9b):")
    print(ascii_worker_view(hot.log, width=72, t0=hot.started, horizon=hot.finished, max_workers=12))

    figures = os.path.join(os.path.dirname(__file__), "figures")
    os.makedirs(figures, exist_ok=True)
    svg_worker_view(cold.log, os.path.join(figures, "fig09a_cold_workers.svg"),
                    t0=cold.started, horizon=cold.finished, title="Fig 9a cold cache")
    svg_worker_view(hot.log, os.path.join(figures, "fig09b_hot_workers.svg"),
                    t0=hot.started, horizon=hot.finished, title="Fig 9b hot cache")
    print(f"SVG panels written to {figures}/fig09*.svg")

    # paper claims: substantial startup reduction; cold spends ~1/4 of
    # its time on transfer+staging, hot spends (almost) none of it
    assert hot.makespan < cold.makespan
    assert cold_overhead > 0.10
    assert hot_overhead < cold_overhead / 3
    assert hot.transfer_counts.get("url", 0) == 0
    assert hot.transfer_counts.get("stage", 0) == 0


def test_fig09_hot_cache_names_stable_across_runs(once):
    """The mechanism behind Fig 9: identical content-addressable names."""

    def names_of_two_runs():
        from repro.sim.cluster import SimCluster
        from repro.sim.simmanager import SimManager

        out = []
        for seed in (10, 20):
            cluster = SimCluster()
            cluster.add_workers(2)
            m = SimManager(cluster, seed=seed)
            url = m.declare_url("https://a/blast.tar.gz", 1000, cache="worker")
            sw = m.declare_untar(url, unpacked_size=3000, stage_time=1.0, cache="worker")
            out.append((url.cache_name, sw.cache_name))
        return out

    (u1, s1), (u2, s2) = once(names_of_two_runs)
    assert u1 == u2
    assert s1 == s2
