"""Figure 11 — comparison of transfer methods for common data.

Paper: distributing one 200 MB file to 500 workers.

* (a) every worker downloads from the remote URL independently;
* (b) worker-to-worker transfers without supervision: the manager
  overloads a worker (hotspot) and performance suffers;
* (c) worker-to-worker transfers with a concurrent-transfer limit of 3
  per source: an equitable division of bandwidth, completing in about
  half the original time (3 was found slightly better than 2 or 4).

Network parameters model the paper's testbed: a Panasas-class shared
source (~5 GB/s aggregate), 10 GbE workers with ~0.4 GB/s effective
per-node streaming, and ~1 s per-transfer setup cost.
"""

from repro.sim.workloads import distribution_workflow

NETWORK = dict(
    n_workers=500, file_mb=200,
    server_bps=5e9, worker_bps=4e8, transfer_latency=1.0,
)


def _run_all_modes():
    results = {
        "url": distribution_workflow("url", **NETWORK),
        "unmanaged": distribution_workflow("unmanaged", **NETWORK),
    }
    for limit in (1, 2, 3, 4, 8):
        results[f"managed-{limit}"] = distribution_workflow(
            "managed", limit=limit, **NETWORK
        )
    return results


def _percentiles(times):
    n = len(times)
    return times[n // 2], times[(9 * n) // 10], times[-1]


def test_fig11_transfer_method_comparison(once, bench_report):
    results = once(_run_all_modes)
    for mode, r in results.items():
        bench_report.record(f"{mode}_makespan_s", r.makespan)
        bench_report.record(
            f"{mode}_peer_transfers", r.stats.transfer_counts.get("peer", 0)
        )

    print("\n=== Fig 11: transfer methods, 200MB file -> 500 workers ===")
    print(f"{'mode':>12s} {'p50(s)':>8s} {'p90(s)':>8s} {'last(s)':>8s} {'url loads':>10s} {'peer':>6s}")
    for mode, r in results.items():
        p50, p90, last = _percentiles(r.completion_times)
        print(
            f"{mode:>12s} {p50:8.1f} {p90:8.1f} {last:8.1f} "
            f"{r.stats.transfer_counts.get('url', 0):10d} "
            f"{r.stats.transfer_counts.get('peer', 0):6d}"
        )

    url = results["url"].makespan
    unmanaged = results["unmanaged"].makespan
    managed3 = results["managed-3"].makespan

    # paper Fig 11a vs 11c: managed peer transfers finish in roughly
    # half the worker-to-URL time (ours: ~1.5x under this network model)
    assert managed3 < url / 1.3
    # paper Fig 11b: unsupervised transfers overload a worker and
    # perform far worse than either alternative
    assert unmanaged > url
    assert unmanaged > 5 * managed3
    # peer transfers carry almost all traffic in managed mode
    assert results["managed-3"].stats.transfer_counts.get("peer", 0) > 450
    # a sensible interior limit beats both extremes
    assert managed3 < results["managed-1"].makespan
    assert managed3 < results["managed-8"].makespan


def test_fig11_completion_curves(once):
    """The cumulative completion curves behind the three panels."""

    def three():
        return {
            mode: distribution_workflow(mode, **NETWORK)
            for mode in ("url", "unmanaged", "managed")
        }

    results = once(three)
    print("\ncompletion curves (workers finished at time t):")
    print(f"{'t(s)':>8s} {'url':>6s} {'unmanaged':>10s} {'managed':>8s}")
    import bisect

    horizon = max(r.makespan for r in results.values())
    for i in range(11):
        t = horizon * i / 10
        row = [
            bisect.bisect_right(r.completion_times, t) for r in results.values()
        ]
        print(f"{t:8.1f} {row[0]:6d} {row[1]:10d} {row[2]:8d}")
    # managed mode must dominate the curve: at the time managed
    # finishes everyone, the unmanaged run has served only a fraction
    managed_done = results["managed"].makespan
    unmanaged_at = bisect.bisect_right(
        results["unmanaged"].completion_times, managed_done
    )
    assert unmanaged_at < NETWORK["n_workers"] // 2
