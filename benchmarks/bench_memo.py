"""Memoization — clean vs warm-store runs and the invalidation path.

A deterministic analysis sweep (one shared worker-cached dataset, many
single-shard tasks) is submitted four times against one persistent
memo store:

* **cold** — empty store; every task executes and records an entry.
* **warm** — same cluster, fresh manager: every recorded output is
  still backed by a live replica, so the whole sweep completes from
  the store without dispatching a single task.
* **invalidated** — the cluster is replaced (worker caches gone) but
  the store survives; every entry fails replica validation, is
  observably invalidated, and the sweep re-executes at cold cost while
  re-recording the same deterministic names.
* **rewarm** — on the replacement cluster, proving invalidation
  restored the store rather than poisoning it.

Headline claim (ISSUE acceptance bar): the warm run's makespan is at
most 25% of the cold run's. In the simulator a fully memo-served
sweep dispatches nothing, so the warm makespan is exactly zero.
"""

from repro.core.task import Task, TaskState
from repro.memo.store import MemoStore
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager

MB = 1_000_000
N_WORKERS = 16
N_TASKS = 120
TASK_DURATION = 30.0


def _cluster():
    c = SimCluster()
    c.add_workers(N_WORKERS, cores=4)
    return c


def _sweep(m, tenant="default"):
    data = m.declare_dataset("sweep-input", 2_000 * MB, cache="worker")
    tasks = []
    for i in range(N_TASKS):
        t = Task(f"analyze --shard {i}").set_deterministic().set_tenant(tenant)
        t.add_input(data, "in.dat")
        t.add_output(m.declare_temp(), "out.dat")
        m.submit(t, duration=TASK_DURATION, output_sizes={"out.dat": 5 * MB})
        tasks.append(t)
    return tasks


def _run(cluster, store, tenant="default"):
    m = SimManager(cluster, memo_store=store)
    tasks = _sweep(m, tenant=tenant)
    stats = m.run(finalize=False)  # keep worker caches (the replicas) alive
    assert all(t.state == TaskState.DONE for t in tasks)
    counts = {
        k: len(list(m.control.log.events(k)))
        for k in ("memo_hit", "memo_miss", "memo_invalidated", "task_start")
    }
    return stats, counts


def _all_four(tmp_path):
    store = MemoStore(tmp_path / "memo")
    cluster = _cluster()
    cold = _run(cluster, store, tenant="alice")
    warm = _run(cluster, store, tenant="bob")  # cross-tenant, replica-backed
    replacement = _cluster()  # caches gone, store survives
    invalidated = _run(replacement, store, tenant="alice")
    rewarm = _run(replacement, store, tenant="alice")
    return cold, warm, invalidated, rewarm


def test_memo_reuse(tmp_path, once, bench_report):
    cold, warm, invalidated, rewarm = once(_all_four, tmp_path)

    runs = [
        ("cold", cold),
        ("warm", warm),
        ("invalidated", invalidated),
        ("rewarm", rewarm),
    ]
    for label, (stats, counts) in runs:
        bench_report.from_stats(stats, prefix=label)
        for kind, n in counts.items():
            bench_report.record(f"{label}_{kind}", n)
    warm_fraction = warm[0].makespan / cold[0].makespan
    bench_report.record("warm_makespan_fraction", warm_fraction)

    print("\n=== Memoization: clean vs warm store vs invalidation ===")
    print(
        f"{'run':>12s} {'makespan(s)':>12s} {'hits':>6s} {'misses':>7s} "
        f"{'invalid':>8s} {'executed':>9s}"
    )
    for label, (stats, counts) in runs:
        print(
            f"{label:>12s} {stats.makespan:12.1f} {counts['memo_hit']:6d} "
            f"{counts['memo_miss']:7d} {counts['memo_invalidated']:8d} "
            f"{counts['task_start']:9d}"
        )
    print(f"warm/cold makespan: {warm_fraction:.1%} (bar: <=25%)")

    # cold pays full price and records everything
    assert cold[1]["memo_miss"] == N_TASKS
    assert cold[1]["task_start"] == N_TASKS
    # warm run is served entirely from the store — zero dispatch, and
    # comfortably under the <=25%-of-cold acceptance bar
    assert warm[1]["memo_hit"] == N_TASKS
    assert warm[1]["task_start"] == 0
    assert warm_fraction <= 0.25
    # a vanished cluster never yields a stale hit: every entry is
    # invalidated and the sweep re-executes at (roughly) cold cost
    assert invalidated[1]["memo_invalidated"] == N_TASKS
    assert invalidated[1]["memo_hit"] == 0
    assert invalidated[1]["task_start"] == N_TASKS
    assert invalidated[0].makespan >= 0.9 * cold[0].makespan
    # ...and re-records, so the store is warm again afterwards
    assert rewarm[1]["memo_hit"] == N_TASKS
    assert rewarm[1]["task_start"] == 0
