"""End-to-end wall-clock benches on the real multi-process runtime.

Scaled-down versions of the paper's headline experiments running on
actual worker processes (not the simulator): persistent caching across
manager restarts (Fig 9) and shared mini-task unpacking (Fig 10).
Sizes are laptop-friendly; what is measured is real staging, real
tar-unpacking, and real subprocess execution.
"""

import multiprocessing as mp
import os
import tarfile
import time

import pytest

from repro.core.manager import Manager
from repro.core.task import Task, TaskState

_CTX = mp.get_context("spawn")

N_TASKS = 12
ASSET_MB = 24


def _worker_main(host, port, workdir):
    from repro.worker.worker import Worker

    Worker(host, port, workdir, cores=4, memory=2000, disk=4000,
           task_timeout=120.0).run()


def _start_workers(m, workdirs):
    procs = []
    for wd in workdirs:
        p = _CTX.Process(target=_worker_main, args=(m.host, m.port, wd))
        p.start()
        procs.append(p)
    deadline = time.time() + 30
    while time.time() < deadline:
        with m._lock:
            if len(m.workers) >= len(workdirs):
                return procs
        time.sleep(0.05)
    raise TimeoutError("workers did not register")


def _stop(m, procs):
    m.close(shutdown_workers=True)
    for p in procs:
        p.join(timeout=10)
        if p.is_alive():
            p.terminate()


def _make_asset_tar(tmp_path):
    """A directory asset with one large member, packed as a tarball."""
    src = tmp_path / "asset"
    (src / "db").mkdir(parents=True)
    with open(src / "db" / "reference.bin", "wb") as f:
        f.write(os.urandom(ASSET_MB * 1_000_000))
    (src / "db" / "meta.txt").write_text("reference dataset\n")
    tar_path = tmp_path / "asset.tar"
    with tarfile.open(tar_path, "w") as tar:
        tar.add(src, arcname="asset")
    return tar_path


def _blast_like_run(tar_path, workdirs):
    """One workflow run against the given (persistent) worker dirs."""
    m = Manager()
    procs = _start_workers(m, workdirs)
    try:
        started = time.monotonic()
        tarball = m.declare_local(str(tar_path), cache="worker")
        unpacked = m.declare_untar(tarball, cache="worker")
        tasks = []
        for i in range(N_TASKS):
            t = Task(f"wc -c < env/asset/db/reference.bin && echo task{i}")
            t.add_input(unpacked, "env")
            tasks.append(t)
            m.submit(t)
        m.run_until_done(timeout=300)
        elapsed = time.monotonic() - started
        assert all(t.state == TaskState.DONE for t in tasks)
        stages = len(m.log.events("stage_start"))
        pushes = sum(
            1 for e in m.log.events("transfer_start")
            if e.file == tarball.cache_name
        )
        return elapsed, stages, pushes
    finally:
        _stop(m, procs)


def test_real_fig09_persistent_cache_across_managers(benchmark, tmp_path, bench_report):
    """Cold vs hot cache with real workers surviving a manager restart."""
    tar_path = _make_asset_tar(tmp_path)
    workdirs = [str(tmp_path / "w0"), str(tmp_path / "w1")]

    cold_elapsed, cold_stages, cold_pushes = _blast_like_run(tar_path, workdirs)

    def hot_run():
        return _blast_like_run(tar_path, workdirs)

    hot_elapsed, hot_stages, hot_pushes = benchmark.pedantic(
        hot_run, iterations=1, rounds=1
    )
    bench_report.record("cold_elapsed_s", cold_elapsed)
    bench_report.record("hot_elapsed_s", hot_elapsed)
    bench_report.record("cold_stages", cold_stages)
    bench_report.record("hot_stages", hot_stages)
    print(
        f"\nreal Fig 9: cold {cold_elapsed:.2f}s "
        f"({cold_pushes} pushes, {cold_stages} unpacks) vs "
        f"hot {hot_elapsed:.2f}s ({hot_pushes} pushes, {hot_stages} unpacks)"
    )
    # hot run finds tarball AND unpacked product already on the workers
    assert cold_pushes >= 1 and cold_stages >= 1
    assert hot_pushes == 0
    assert hot_stages == 0
    assert hot_elapsed < cold_elapsed


def test_real_fig10_shared_unpack_once_per_worker(benchmark, tmp_path, bench_report):
    """The mini-task product is staged once per worker, shared by all tasks."""
    tar_path = _make_asset_tar(tmp_path)
    m = Manager()
    procs = _start_workers(m, [str(tmp_path / "sw0"), str(tmp_path / "sw1")])
    try:
        tarball = m.declare_local(str(tar_path))
        unpacked = m.declare_untar(tarball)

        def run_tasks():
            tasks = []
            for i in range(N_TASKS):
                t = Task("ls env/asset/db >/dev/null && echo ok")
                t.add_input(unpacked, "env")
                tasks.append(t)
                m.submit(t)
            m.run_until_done(timeout=300)
            return tasks

        tasks = benchmark.pedantic(run_tasks, iterations=1, rounds=1)
        assert all(t.state == TaskState.DONE for t in tasks)
        stages = len(m.log.events("stage_start"))
        bench_report.record("wall_seconds", benchmark.stats.stats.mean)
        bench_report.record("stages", stages)
        print(f"\nreal Fig 10: {N_TASKS} tasks, {stages} unpacks (one per worker)")
        assert stages <= 2
    finally:
        _stop(m, procs)
