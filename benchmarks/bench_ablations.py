"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — these isolate individual TaskVine mechanisms by
turning them off and measuring the cost on representative workloads:

* data-locality placement vs random placement,
* the serverless model vs plain per-task startup (BGD),
* proactive temp-file replication under worker churn,
* worker-to-worker transfers vs manager-only distribution.
"""

import random

from repro.core.library import FunctionCall
from repro.core.resources import Resources
from repro.core.task import Task, TaskState
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager
from repro.sim.workloads import bgd_workflow

MB = 1_000_000


def _locality_workload(locality: bool, seed: int = 0):
    """A trickle of group-affine tasks onto a cluster with spare slots.

    Placement only has a choice when several workers have free
    capacity; a saturated cluster forces every task into whichever slot
    frees next regardless of policy (the dispatch-pressure regime the
    paper's §3.3 "future considerations" discusses).  So the ablation
    offers ~5 concurrent tasks to 32 slots: with locality each group's
    dataset settles on one worker; random placement copies every
    dataset almost everywhere.
    """
    rng = random.Random(seed)
    cluster = SimCluster()
    cluster.add_workers(8, cores=4, disk=4_000_000)
    m = SimManager(cluster, locality=locality, seed=seed)
    groups = [m.declare_dataset(f"group-{g}", 800 * MB) for g in range(8)]

    def submit_one(i: int) -> None:
        t = Task(f"analyze {i}").set_category("analyze")
        t.add_input(groups[i % 8], "data")
        m.submit(t, duration=rng.uniform(8, 12))

    for i in range(160):
        cluster.sim.schedule_at(2.0 * i, submit_one, i)
    # external submissions keep arriving, so drive the raw event loop
    # to completion rather than stopping at a transient quiet point
    cluster.sim.run()
    stats = m.run(finalize=False)  # workflow already complete: collect stats
    if not all(t.state.value == "done" for t in m.tasks.values()):
        raise RuntimeError("trickle workload did not complete")
    return stats


def test_ablation_locality_placement(once, bench_report):
    from repro.core.events import makespan

    def both():
        return _locality_workload(True), _locality_workload(False)

    with_locality, without = once(both)
    bytes_moved = lambda s: sum(s.bytes_by_source.values())
    bench_report.record("locality_bytes_moved", bytes_moved(with_locality))
    bench_report.record("random_bytes_moved", bytes_moved(without))
    bench_report.record("locality_makespan_s", makespan(with_locality.log))
    bench_report.record("random_makespan_s", makespan(without.log))
    print("\n=== ablation: data-locality placement ===")
    print(f"{'mode':>10s} {'makespan(s)':>12s} {'GB moved':>9s} {'transfers':>10s}")
    for label, s in [("locality", with_locality), ("random", without)]:
        print(
            f"{label:>10s} {makespan(s.log):12.1f} {bytes_moved(s)/1e9:9.1f} "
            f"{sum(s.transfer_counts.values()):10d}"
        )
    # locality moves dramatically fewer bytes: each dataset settles on
    # a few workers instead of being copied wherever tasks land
    assert bytes_moved(with_locality) < bytes_moved(without) / 1.5


def test_ablation_serverless_vs_plain_tasks(once, bench_report):
    """The BGD experiment with and without the serverless model.

    Plain tasks pay environment startup (interpreter + imports) per
    task; function calls pay it once per worker (paper §3.4 claim).
    """
    # per-task environment setup dominates short tasks: this is the
    # regime the serverless model targets (paper §3.4)
    startup = 20.0
    work = (5.0, 15.0)

    def plain(seed=0):
        rng = random.Random(seed)
        cluster = SimCluster()
        cluster.add_workers(50, cores=5, disk=2_000_000)
        m = SimManager(cluster, seed=seed)
        env = m.declare_dataset("bgd-env", 89 * MB)
        for i in range(500):
            t = Task(f"bgd {i}").set_category("bgd")
            t.add_input(env, "env")
            m.submit(t, duration=startup + rng.uniform(*work))
        return m.run()

    def serverless():
        # same 5-core workers: one core hosts the resident instance,
        # four serve calls (the paper's composed resource model)
        return bgd_workflow(
            n_calls=500, n_workers=50, cores=5, env_mb=89,
            library_startup=startup, call_time_range=work,
            function_slots=4, seed=0,
        )

    plain_run, sls = once(lambda: (plain(), serverless()))
    bench_report.record("plain_makespan_s", plain_run.makespan)
    bench_report.record("serverless_makespan_s", sls.stats.makespan)
    print("\n=== ablation: serverless vs plain tasks (BGD, 500 short calls) ===")
    print(f"{'mode':>11s} {'makespan(s)':>12s}")
    print(f"{'plain':>11s} {plain_run.makespan:12.1f}")
    print(f"{'serverless':>11s} {sls.stats.makespan:12.1f}")
    # startup paid 500x (amortized over 250 slots) vs once per worker
    assert sls.stats.makespan < plain_run.makespan


def test_ablation_replication_single_vs_double(once, bench_report):
    """Temp replication lets a pipeline survive worker departures."""
    def both():
        results = {}
        for replicas in (1, 2):
            cluster = SimCluster()
            for i in range(6):
                cluster.add_worker(cores=2, worker_id=f"w{i}", disk=2_000_000)
            m = SimManager(
                cluster, temp_replica_count=replicas, max_task_retries=5
            )
            prev = None
            tasks = []
            for i in range(5):
                out = m.declare_temp()
                t = Task(f"stage{i}").set_category("pipeline")
                if prev is not None:
                    t.add_input(prev, "in")
                t.add_output(out, "out")
                m.submit(t, duration=30.0, output_sizes={"out": 20 * MB})
                tasks.append(t)
                prev = out
            cluster.remove_worker("w0", at=45.0)
            cluster.remove_worker("w1", at=75.0)
            stats = m.run(finalize=False)
            results[replicas] = (stats, tasks, m.tasks_requeued)
        return results

    results = once(both)
    for replicas, (stats, _tasks, requeued) in sorted(results.items()):
        bench_report.record(f"replicas_{replicas}_makespan_s", stats.makespan)
        bench_report.record(f"replicas_{replicas}_requeued", requeued)
    print("\n=== ablation: temp replication under worker churn ===")
    print(f"{'replicas':>9s} {'makespan(s)':>12s} {'requeued':>9s}")
    for replicas, (stats, tasks, requeued) in sorted(results.items()):
        print(f"{replicas:9d} {stats.makespan:12.1f} {requeued:9d}")
        assert all(t.state == TaskState.DONE for t in tasks)
    # with replication, losing a producer does not force re-running its
    # upstream chain, so the run completes no slower
    assert results[2][0].makespan <= results[1][0].makespan


def test_ablation_peer_transfers_off(once, bench_report):
    """Manager-only distribution vs peer transfers for a shared asset."""

    def run(worker_limit):
        cluster = SimCluster()
        cluster.add_workers(40, cores=4, disk=4_000_000)
        m = SimManager(
            cluster, worker_transfer_limit=worker_limit,
            source_transfer_limit=3, seed=0,
        )
        data = m.declare_dataset("big-env", 1000 * MB)
        for i in range(160):
            t = Task(f"t{i}").add_input(data, "env")
            m.submit(t, duration=10.0)
        return m.run()

    def both():
        return run(3), run(0)

    with_peers, without = once(both)
    bench_report.from_stats(with_peers, prefix="peers")
    bench_report.from_stats(without, prefix="nopeers")
    print("\n=== ablation: peer transfers for a 1 GB shared asset ===")
    print(f"{'mode':>9s} {'makespan(s)':>12s} {'via manager':>12s} {'via peers':>10s}")
    for label, s in [("peers", with_peers), ("none", without)]:
        print(
            f"{label:>9s} {s.makespan:12.1f} "
            f"{s.transfer_counts.get('manager', 0):12d} "
            f"{s.transfer_counts.get('peer', 0):10d}"
        )
    assert with_peers.transfer_counts.get("peer", 0) > 30
    assert with_peers.makespan < without.makespan
