"""Shared benchmark configuration.

Every benchmark regenerates one figure of the paper's evaluation on
the simulated cluster (virtual time), checks the paper's qualitative
claim as an assertion, attaches the figure's series to
``benchmark.extra_info``, and prints a human-readable reproduction of
the figure (run with ``-s`` to see it).

Simulation experiments are deterministic, so each is measured as a
single round — the "benchmark time" is the wall-clock cost of the
simulation itself, while the scientific results live in the printed
series and extra_info.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one warm-free round; return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
