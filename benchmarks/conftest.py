"""Shared benchmark configuration.

Every benchmark regenerates one figure of the paper's evaluation on
the simulated cluster (virtual time), checks the paper's qualitative
claim as an assertion, attaches the figure's series to
``benchmark.extra_info``, and prints a human-readable reproduction of
the figure (run with ``-s`` to see it).

Simulation experiments are deterministic, so each is measured as a
single round — the "benchmark time" is the wall-clock cost of the
simulation itself, while the scientific results live in the printed
series, extra_info, and the machine-readable ``BENCH_<name>.json``
written through the :func:`bench_report` fixture (see
:mod:`repro.observe.bench_report`; ``REPRO_BENCH_DIR`` overrides the
output directory).

All RNGs are re-seeded before every benchmark so runs are bit-for-bit
reproducible regardless of execution order or ``-k`` selection.
"""

import random

import pytest

from repro.observe.bench_report import BenchReporter

#: one fixed seed for the whole suite; simulations derive their own
#: seeds from explicit parameters, this pins any residual global use
BENCH_SEED = 20230601


@pytest.fixture(autouse=True)
def _seed_rngs():
    """Deterministically seed every RNG a benchmark might touch."""
    random.seed(BENCH_SEED)
    try:
        import numpy

        numpy.random.seed(BENCH_SEED % 2**32)
    except ImportError:
        pass
    yield


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one warm-free round; return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run


@pytest.fixture
def bench_report(request):
    """A :class:`BenchReporter` named after the test, written on teardown.

    Benchmarks record their headline series on it (or call
    ``from_stats``); the report lands as ``BENCH_<test_name>.json`` only
    if at least one metric was recorded, so failing benchmarks that
    bailed early don't publish empty reports.
    """
    name = request.node.name.replace("test_", "", 1)
    reporter = BenchReporter(name)
    yield reporter
    if reporter.metrics:
        reporter.write()
