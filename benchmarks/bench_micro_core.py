"""Microbenchmarks of the core mechanisms (supports §3.2 and §6).

Not a paper figure: these measure the throughput of the pieces the
paper's prose worries about — content-addressable naming cost (§3.2,
"there is some expense to producing such names"), and scheduler
dispatch rate (§6: "at even one millisecond per task, it would still
take a thousand seconds to dispatch a million tasks").
"""

import os
import random

from repro.core.files import BufferFile, CacheLevel
from repro.core.naming import Namer, directory_merkle, task_spec_hash
from repro.core.replica_table import ReplicaTable
from repro.core.resources import Resources
from repro.core.scheduler import Scheduler, WorkerView
from repro.core.task import Task
from repro.core.transfer_table import TransferTable
from repro.protocol import serialization as ser


def test_bench_buffer_naming_throughput(benchmark, bench_report):
    """Content-addressing 1 MB buffers (MD5-bound)."""
    data = os.urandom(1 << 20)

    def name_one():
        namer = Namer(seed=0)
        return namer.assign(BufferFile(data, CacheLevel.WORKER))

    name = benchmark(name_one)
    assert name.startswith("buffer-md5-")
    bench_report.record("mean_seconds", benchmark.stats.stats.mean)


def test_bench_directory_merkle(benchmark, tmp_path, bench_report):
    """Merkle-naming a 200-file directory tree (paper Fig 7)."""
    rng = random.Random(0)
    for d in range(10):
        sub = tmp_path / f"d{d}"
        sub.mkdir()
        for i in range(20):
            (sub / f"f{i}").write_bytes(rng.randbytes(2048))
    digest = benchmark(directory_merkle, str(tmp_path))
    assert len(digest) == 32
    bench_report.record("mean_seconds", benchmark.stats.stats.mean)


def test_bench_task_spec_hash(benchmark, bench_report):
    """Spec-hashing a mini task with 20 inputs."""
    inputs = [(f"in{i}", f"file-md5-{i:032x}") for i in range(20)]
    digest = benchmark(
        task_spec_hash, "tar -xf input.tar", inputs, {"cores": 1}, {"X": "1"}
    )
    assert len(digest) == 32
    bench_report.record("mean_seconds", benchmark.stats.stats.mean)


def _make_scheduler(n_workers, n_files):
    replicas = ReplicaTable()
    transfers = TransferTable()
    rng = random.Random(0)
    for w in range(n_workers):
        for _ in range(16):
            replicas.add_replica(
                f"file-{rng.randrange(n_files)}", f"w{w:04d}", size=1_000_000
            )
    sched = Scheduler(replicas, transfers)
    views = {
        f"w{i:04d}": WorkerView(
            worker_id=f"w{i:04d}",
            capacity=Resources(cores=16, memory=64_000, disk=64_000),
            running_tasks=0,
        )
        for i in range(n_workers)
    }
    return sched, views


def _named_task(n_inputs, rng, n_files):
    t = Task("cmd")
    for i in range(n_inputs):
        f = BufferFile(b"x")
        f.cache_name = f"file-{rng.randrange(n_files)}"
        t.inputs.append((f"in{i}", f))
    return t


def test_bench_scheduler_placement_100_workers(benchmark, bench_report):
    """Locality placement against 100 workers (the §6 dispatch-rate concern)."""
    sched, views = _make_scheduler(100, 500)
    rng = random.Random(1)
    tasks = [_named_task(4, rng, 500) for _ in range(64)]

    def place_batch():
        chosen = [sched.choose_worker(t, views) for t in tasks]
        return chosen

    chosen = benchmark(place_batch)
    assert all(c is not None for c in chosen)
    bench_report.record("mean_seconds", benchmark.stats.stats.mean)
    bench_report.record("placements_per_second", 64 / benchmark.stats.stats.mean)


def _fresh_tasks(n_tasks, n_files, inputs_per_task=4):
    rng = random.Random(3)
    tasks = []
    for i in range(n_tasks):
        t = _named_task(inputs_per_task, rng, n_files)
        t.task_id = f"t{i + 1}"
        t.seq = i + 1
        t.priority = float(rng.randrange(4))
        tasks.append(t)
    return tasks


def _bump(view):
    """A dispatch's effect on a worker view (one more 1-core task)."""
    return WorkerView(
        worker_id=view.worker_id,
        capacity=view.capacity,
        allocated=Resources(
            cores=view.allocated.cores + 1,
            memory=view.allocated.memory,
            disk=view.allocated.disk,
            gpus=view.allocated.gpus,
        ),
        running_tasks=view.running_tasks + 1,
    )


def _legacy_pump(sched, tasks, views):
    """The pre-index pump: full sort, then an every-worker scan per task."""
    views = dict(views)
    placed = []
    for t in Scheduler.order_ready(tasks):
        wid = sched.choose_worker(t, views)
        if wid is None:
            continue
        placed.append((t.task_id, wid))
        views[wid] = _bump(views[wid])
    return placed


def _indexed_pump(sched, tasks, views):
    """The incremental pump: ReadyQueue heap + PlacementIndex."""
    from repro.core.scheduler import PlacementIndex, ReadyQueue

    queue = ReadyQueue()
    for t in tasks:
        queue.push(t)
    index = PlacementIndex(dict(views))
    placed = []
    for entry in queue.pop_entries(queue.snapshot_token):
        t = entry[3]
        wid = sched.choose_worker_indexed(t, index)
        queue.discard(t)
        if wid is None:
            continue
        placed.append((t.task_id, wid))
        index.update(wid, _bump(index.views[wid]))
    return placed


def test_sched_pump(bench_report):
    """Pump scaling grid: per-pump wall time, legacy scan vs. indexes.

    Each cell places every ready task of one pump against a cluster
    (worker capacity sized so all fit), timing the old sort+scan loop
    and the heap+index loop over the *same* state — and asserts the
    placement sequences are identical, so the speedup is measured on
    provably equivalent decisions.  Acceptance: ≥5× at 200×5000.
    """
    import time

    grid = [(25, 500), (100, 2000), (200, 5000)]
    speedups = {}
    for n_workers, n_tasks in grid:
        n_files = n_tasks // 10
        sched, views = _make_scheduler(n_workers, n_files)
        for v in views.values():
            # every task is 1-core; make sure the whole pump places
            v.capacity = Resources(
                cores=-(-n_tasks // n_workers) + 1, memory=64_000, disk=64_000
            )
        tasks = _fresh_tasks(n_tasks, n_files)

        start = time.perf_counter()
        legacy = _legacy_pump(sched, tasks, views)
        legacy_s = time.perf_counter() - start

        start = time.perf_counter()
        indexed = _indexed_pump(sched, tasks, views)
        indexed_s = time.perf_counter() - start

        assert indexed == legacy, (
            f"indexed pump diverged from legacy at {n_workers}x{n_tasks}"
        )
        assert len(legacy) == n_tasks
        cell = f"{n_workers}w_{n_tasks}t"
        speedups[cell] = legacy_s / indexed_s
        bench_report.record(f"legacy_pump_seconds_{cell}", legacy_s)
        bench_report.record(f"indexed_pump_seconds_{cell}", indexed_s)
        bench_report.record(f"speedup_{cell}", legacy_s / indexed_s)
    assert speedups["200w_5000t"] >= 5.0, (
        f"indexed pump only {speedups['200w_5000t']:.1f}x faster at 200x5000"
    )


def test_bench_transfer_planning(benchmark, bench_report):
    """Source selection under per-source limits for a 6-input task."""
    sched, views = _make_scheduler(50, 200)
    rng = random.Random(2)
    task = _named_task(6, rng, 200)

    plan = benchmark(sched.plan_transfers, task, "w0001", {})
    assert plan is not None
    bench_report.record("mean_seconds", benchmark.stats.stats.mean)


def test_bench_replica_table_updates(benchmark, bench_report):
    """Cache-update ingestion rate (one per transfer in a real run)."""
    def ingest():
        rt = ReplicaTable()
        for i in range(5000):
            rt.add_replica(f"f{i % 700}", f"w{i % 97}", size=1024)
        return rt.total_replicas()

    total = benchmark(ingest)
    assert total > 0
    bench_report.record("mean_seconds", benchmark.stats.stats.mean)
    bench_report.record("updates_per_second", 5000 / benchmark.stats.stats.mean)


def test_bench_function_serialization(benchmark, bench_report):
    """PythonTask payload round trip for a closure over module state."""
    offset = 17

    def fn(x, y=3):
        return (x + y) * offset

    def round_trip():
        return ser.loads(ser.dumps(fn))(5)

    assert benchmark(round_trip) == (5 + 3) * 17
    bench_report.record("mean_seconds", benchmark.stats.stats.mean)


def test_bench_sim_end_to_end_dispatch(benchmark, bench_report):
    """Whole-loop dispatch rate: 2000 tiny tasks through the simulated
    manager on 100 workers (the paper §6 scheduling-scale concern,
    measured through the full pump/transfer/execute cycle)."""
    from repro.core.task import Task
    from repro.sim.cluster import SimCluster
    from repro.sim.simmanager import SimManager

    def run():
        cluster = SimCluster()
        cluster.add_workers(100, cores=4)
        m = SimManager(cluster)
        data = m.declare_dataset("shared", 1_000_000)
        for i in range(2000):
            t = Task(f"t{i}")
            t.add_input(data, "d")
            m.submit(t, duration=1.0)
        stats = m.run(finalize=False)
        assert stats.tasks_done == 2000
        return stats

    stats = benchmark.pedantic(run, iterations=1, rounds=1)
    assert stats.tasks_done == 2000
    bench_report.record("wall_seconds", benchmark.stats.stats.mean)
    bench_report.record("tasks_per_second", 2000 / benchmark.stats.stats.mean)
