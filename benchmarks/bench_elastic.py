"""Elastic-cluster benchmark — drain-vs-kill under a streaming workload.

A continuous-arrival genome workload (jobs Poisson-arriving while
earlier ones still run) is driven over the same simulated cluster four
ways: a static fleet, a fleet that gracefully *drains* half its workers
mid-stream, a fleet where the same workers *crash* at the same
instants, and an autoscaled fleet that grows and shrinks with the
ready queue.  Graceful drains migrate sole-holder cache objects to
survivors before departure, so the drain run should finish with the
crash run's membership timeline but without its regeneration bill —
that decomposition (bytes re-replicated up front vs tasks re-run after
the fact) is the headline of the report.
"""

from repro.faults import FaultPlan, SimFaultInjector
from repro.sim.cluster import SimCluster
from repro.sim.simmanager import SimManager
from repro.sim.workloads import Autoscaler, SimAutoscaleDriver, streaming_genome_workload

PARAMS = dict(
    n_workers=8,
    n_jobs=12,
    fanout=6,
    mean_interarrival=8.0,
    seed=20230601,
)
#: the four workers that leave mid-stream, and when
DEPARTURES = [("w0", 40.0), ("w1", 55.0), ("w2", 70.0), ("w3", 85.0)]


def _membership_plan(kind: str, seed: int) -> FaultPlan:
    plan = FaultPlan(seed=seed)
    for worker, at in DEPARTURES:
        if kind == "drain":
            plan.drain(worker, at=at)
        else:
            plan.crash(worker, at=at)
    return plan


def _run(scenario: str):
    cluster = SimCluster()
    n_start = 2 if scenario == "autoscale" else PARAMS["n_workers"]
    for i in range(n_start):
        cluster.add_worker(cores=4, worker_id=f"w{i}")
    m = SimManager(
        cluster,
        seed=PARAMS["seed"],
        run_nonce="bench-elastic",  # pinned: outputs comparable across fleets
        max_task_retries=10,
    )
    driver = None
    if scenario in ("drain", "kill"):
        SimFaultInjector(_membership_plan(scenario, PARAMS["seed"]), m)
    elif scenario == "autoscale":
        driver = SimAutoscaleDriver(
            m,
            Autoscaler(min_workers=2, max_workers=PARAMS["n_workers"]),
            interval=5.0,
        )
    result = streaming_genome_workload(
        m,
        n_jobs=PARAMS["n_jobs"],
        fanout=PARAMS["fanout"],
        mean_interarrival=PARAMS["mean_interarrival"],
        seed=PARAMS["seed"],
    )
    return m, result, driver


def test_elastic_stream(once, bench_report):
    runs = once(lambda: {s: _run(s) for s in ("static", "drain", "kill", "autoscale")})

    rows = {}
    for scenario, (m, result, driver) in runs.items():
        assert all(t > 0 for t in result.job_completions), scenario
        rows[scenario] = dict(
            makespan=result.stats.makespan,
            regenerations=int(m.metrics.counter("recovery.regenerations").value),
            requeues=int(m.metrics.counter("recovery.requeues").value),
            drain_bytes=int(
                m.metrics.counter("elastic.drain_bytes_replicated").value
            ),
            drain_objects=int(
                m.metrics.counter("elastic.drain_objects_replicated").value
            ),
        )
        bench_report.from_stats(result.stats, prefix=scenario)
        for key, val in rows[scenario].items():
            bench_report.record(f"{scenario}_{key}", val)
    _, auto_result, driver = runs["autoscale"]
    bench_report.record_many({
        "autoscale_joins": driver.joins,
        "autoscale_drains": driver.drains,
        "departures": len(DEPARTURES),
        "jobs": PARAMS["n_jobs"],
    })

    print("\n=== Elastic stream: drain-vs-kill decomposition ===")
    print(
        f"{'scenario':>10s} {'makespan(s)':>12s} {'regens':>7s} "
        f"{'requeues':>9s} {'migrated(MB)':>13s}"
    )
    for scenario in ("static", "drain", "kill", "autoscale"):
        r = rows[scenario]
        print(
            f"{scenario:>10s} {r['makespan']:12.1f} {r['regenerations']:7d} "
            f"{r['requeues']:9d} {r['drain_bytes'] / 1e6:13.1f}"
        )

    # every scenario produced byte-identical job outputs: elasticity is
    # invisible to the workflow's results
    static_outputs = runs["static"][1].outputs
    for scenario in ("drain", "kill", "autoscale"):
        assert runs[scenario][1].outputs == static_outputs, scenario

    # the headline: graceful drains migrate replicas *before* departure
    # (bytes re-replicated, zero lost sole-holders) where crashes force
    # the recovery path to re-run producers after the fact
    assert rows["drain"]["drain_bytes"] > 0
    assert rows["kill"]["regenerations"] > rows["drain"]["regenerations"]
    assert rows["kill"]["requeues"] >= rows["drain"]["requeues"]
    # the autoscaler actually exercised both directions
    assert driver.joins > 0 and driver.drains > 0
